"""Asynchronous transaction propagation (paper Fig 13, §5.6).

After a transaction commits locally it is propagated in the background:

1. the origin sends PROPAGATE (in periodic batches -- "each batch remotely
   copies all transactions that committed since the last batch", §6);
2. a receiver applies the updates once it has (a) every transaction that
   causally precedes x per ``x.startVTS`` and (b) all of x's site's
   transactions with smaller seqnos (the GotVTS guard), then ACKs;
3. when enough sites ACKed -- the experiments' definition is *all* sites
   (§8.1), the spec's is f+1 sites per object including its preferred
   site -- the transaction is **disaster-safe durable** and the origin
   broadcasts DS-DURABLE;
4. a receiver *commits* x (advances CommittedVTS, releases x's locks)
   once x is DS-durable and the same causality guards hold against
   CommittedVTS, then replies VISIBLE;
5. when every site replied, x is **globally visible**.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..core.transaction import CommitRecord
from ..core.updates import touched_oids
from ..obs import trace as span
from ..sim import AllOf, AnyOf, Interrupt


@dataclass
class PropagationTracker:
    """Origin-side state for one committed transaction in flight."""

    record: CommitRecord
    client: Optional[str] = None
    acked: Set[int] = field(default_factory=set)
    visible: Set[int] = field(default_factory=set)
    ds_durable: bool = False
    globally_visible: bool = False
    ds_event: Optional[object] = None
    visible_event: Optional[object] = None
    committed_at: float = 0.0
    ds_at: Optional[float] = None
    visible_at: Optional[float] = None


class PropagationMixin:
    # ------------------------------------------------------------------
    # Origin side
    # ------------------------------------------------------------------
    def _enqueue_propagation(self, record: CommitRecord, notify: Optional[str]) -> None:
        tracker = PropagationTracker(
            record=record,
            client=notify,
            acked={self.site_id},
            visible={self.site_id},
            ds_event=self.kernel.event("ds:%s" % record.tid),
            visible_event=self.kernel.event("vis:%s" % record.tid),
            committed_at=self.kernel.now,
        )
        self._trackers[record.tid] = tracker
        self._outbox.put(record)
        # A 1-site deployment (or f=0) may already satisfy durability.
        self._maybe_ds(tracker)

    def _propagation_loop(self):
        """Batched propagation: ship everything committed since the last
        batch, then wait for that batch to become DS-durable before the
        next -- this serialization is what yields the [RTTmax, 2·RTTmax]
        DS-durability latency distribution (Fig 19)."""
        try:
            while True:
                if len(self._outbox):
                    first = self._outbox.get_nowait()
                else:
                    index, first = yield AnyOf(
                        [self._outbox.get(), self.kernel.timeout(self._batch_period() * 4)]
                    )
                    if index == 1:
                        # Idle tick: retransmit anything stuck un-acked
                        # (messages lost to partitions/crashes), then wait
                        # for new work again.
                        self._resend_unacked()
                        continue
                records: List[CommitRecord] = [first] + self._outbox.drain()
                self._send_batch(records)
                waits = [
                    self._trackers[r.tid].ds_event
                    for r in records
                    if r.tid in self._trackers and not self._trackers[r.tid].ds_durable
                ]
                if waits:
                    # Wait for the batch to become DS-durable, but no
                    # longer than ~one max round trip: under load a
                    # receiver may still be applying the previous batch,
                    # and stalling dispatch would make the batch period
                    # grow without bound instead of staying ~RTTmax.
                    yield AnyOf(
                        [AllOf(waits), self.kernel.timeout(self._batch_period())]
                    )
                self._resend_unacked()
        except Interrupt:
            return

    def _batch_period(self) -> float:
        """~One maximum round trip from this site (min 5 ms)."""
        return max(0.005, self.network.topology.max_rtt_from(self.site_id))

    def _resend_unacked(self) -> None:
        """Retransmit records whose PROPAGATE (or DS-DURABLE) may have
        been lost -- e.g. dropped by a partition that has since healed.
        Receivers treat duplicates idempotently and simply re-ACK."""
        now = self.kernel.now
        stale = 3.0 * self._batch_period()
        resend: List[CommitRecord] = []
        for tracker in self._trackers.values():
            if tracker.ds_durable:
                if not tracker.globally_visible and now - (tracker.ds_at or now) > stale:
                    for site in self.config.active_sites():
                        if site == self.site_id:
                            continue
                        if site not in tracker.acked:
                            # A site activated after DS durability (site
                            # re-integration) may lack the record itself;
                            # it cannot commit what it never received, so
                            # re-PROPAGATE, not just re-announce.
                            self.cast(
                                self.peers[site],
                                "propagate",
                                size_bytes=tracker.record.payload_bytes() + 64,
                                records=[tracker.record],
                                from_site=self.site_id,
                            )
                        if site not in tracker.visible:
                            # VISIBLE acks missing: re-announce DS durability.
                            self.cast(
                                self.peers[site],
                                "ds_durable",
                                record=tracker.record,
                                from_site=self.site_id,
                            )
                    tracker.ds_at = now
                continue
            if now - tracker.committed_at > stale:
                resend.append(tracker.record)
                tracker.committed_at = now  # back off further resends
        if resend:
            resend.sort(key=lambda r: r.seqno)
            self._send_batch(resend)
            self.stats.retransmissions += len(resend)

    def _send_batch(self, records: List[CommitRecord]) -> None:
        size = sum(r.payload_bytes() for r in records) + 64
        for record in records:
            self._span(record.tid, span.PROPAGATE_SEND, batch=len(records))
        for site in self.config.active_sites():
            if site == self.site_id:
                continue
            self.cast(
                self.peers[site],
                "propagate",
                size_bytes=size,
                records=records,
                from_site=self.site_id,
            )
        self.stats.batches_sent += 1

    def on_propagate_ack(self, src: str, tid: str, site: int):
        tracker = self._trackers.get(tid)
        if tracker is None:
            return
        tracker.acked.add(site)
        self._maybe_ds(tracker)

    def on_visible_ack(self, src: str, tid: str, site: int):
        tracker = self._trackers.get(tid)
        if tracker is None:
            return
        tracker.visible.add(site)
        self._maybe_visible(tracker)

    @staticmethod
    def _commit_time(tracker: PropagationTracker) -> float:
        # Lag is measured from the commit point stamped on the record,
        # not tracker.committed_at: the latter is set after the WAL
        # flush and doubles as the resend-backoff timer.
        if tracker.record.committed_at is not None:
            return tracker.record.committed_at
        return tracker.committed_at

    def _maybe_ds(self, tracker: PropagationTracker) -> None:
        if tracker.ds_durable or not self._ds_condition(tracker):
            return
        tracker.ds_durable = True
        tracker.ds_at = self.kernel.now
        tracker.ds_event.trigger_once(None)
        self._ds_lag.observe(self.kernel.now - self._commit_time(tracker))
        self._span(tracker.record.tid, span.DS_DURABLE, acked=len(tracker.acked))
        self.storage.log.append({"kind": "ds_durable", "tid": tracker.record.tid})
        for site in self.config.active_sites():
            if site != self.site_id:
                self.cast(
                    self.peers[site],
                    "ds_durable",
                    record=tracker.record,
                    from_site=self.site_id,
                )
        if tracker.client is not None:
            self.cast(tracker.client, "tx_ds_durable", tid=tracker.record.tid)
        self._maybe_visible(tracker)

    def _ds_condition(self, tracker: PropagationTracker) -> bool:
        if self.ds_mode == "all_sites":
            # §8.1: "we consider a transaction to be disaster-safe durable
            # when it is committed at all sites in the experiment".
            return set(self.config.active_sites()) <= tracker.acked
        # Spec mode (§4.4/Fig 13): f+1 sites replicating each object,
        # including the object's preferred site.
        for oid in touched_oids(tracker.record.updates):
            container = self.config.container(oid.container)
            replicating_acks = {
                s for s in tracker.acked if container.replicated_at(s)
            }
            if len(replicating_acks) < self.f + 1:
                return False
            if container.preferred_site not in tracker.acked:
                return False
        return True

    def _maybe_visible(self, tracker: PropagationTracker) -> None:
        if tracker.globally_visible or not tracker.ds_durable:
            return
        if not set(self.config.active_sites()) <= tracker.visible:
            return
        tracker.globally_visible = True
        tracker.visible_at = self.kernel.now
        tracker.visible_event.trigger_once(None)
        self._visibility_lag.observe(self.kernel.now - self._commit_time(tracker))
        self._span(tracker.record.tid, span.GLOBALLY_VISIBLE)
        self.storage.log.append(
            {"kind": "globally_visible", "tid": tracker.record.tid}
        )
        if tracker.client is not None:
            self.cast(tracker.client, "tx_visible", tid=tracker.record.tid)
        # Fully propagated: retire the tracker (late duplicate acks are
        # ignored; the commit record stays in _records_by_version).
        self._visible_tids.add(tracker.record.tid)
        self._trackers.pop(tracker.record.tid, None)

    def recheck_durability(self) -> None:
        """Re-evaluate DS/visibility conditions, e.g. after the active-site
        set shrank during reconfiguration (§5.7)."""
        for tracker in list(self._trackers.values()):
            self._maybe_ds(tracker)
            self._maybe_visible(tracker)

    def rpc_recheck_durability(self):
        self.recheck_durability()
        return "OK"

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    #: Remote records applied per commit-lock acquisition.  Chunking is
    #: what lets replication keep up under commit saturation (a FIFO lock
    #: grants the apply path one turn per queue rotation) while bounding
    #: how long a batch apply can stall committing transactions.
    APPLY_CHUNK = 512

    def on_propagate(self, src: str, records: List[CommitRecord], from_site: int):
        """Apply a propagation batch.

        Applies run in chunks under one commit-lock acquisition, and
        durability is awaited once for the whole batch (the WAL
        group-commits) -- otherwise a large batch would serialize
        thousands of lock handoffs and flushes.
        """
        to_ack: List[str] = []
        last_durable = None
        records = list(records)
        i = 0
        while i < len(records):
            record = records[i]
            if self.got_vts[record.site] >= record.seqno:
                # Duplicate (origin re-propagating after recovery): re-ACK.
                to_ack.append(record.tid)
                i += 1
                continue
            if not self._got_guard(record):
                self._park_remote(record, src)
                i += 1
                continue
            yield self.commit_lock.acquire()
            try:
                applied = 0
                while i < len(records) and applied < self.APPLY_CHUNK:
                    record = records[i]
                    if self.got_vts[record.site] >= record.seqno:
                        to_ack.append(record.tid)
                        i += 1
                        continue
                    if not self._got_guard(record):
                        self._park_remote(record, src)
                        i += 1
                        continue
                    yield self.kernel.timeout(self.costs.apply_remote)
                    version = record.version
                    self.histories.apply(record.updates, version)
                    self.got_vts = self.got_vts.with_entry(record.site, record.seqno)
                    self._records_by_version[version] = record
                    self.stats.remote_applied += 1
                    self._note_remote_apply(record)
                    last_durable = self.storage.log.append(
                        {"kind": "remote_apply", "record": record}
                    )
                    to_ack.append(record.tid)
                    applied += 1
                    i += 1
            finally:
                self.commit_lock.release()
            self._drain_pending()
        if last_durable is not None:
            yield last_durable  # batch durable before acknowledging
        for tid in to_ack:
            self.cast(src, "propagate_ack", tid=tid, site=self.site_id)

    def _park_remote(self, record: CommitRecord, src: Optional[str]) -> None:
        """Hold back a record whose got guard failed, once: batches can
        carry duplicates (retransmissions, recovery delivery racing
        normal propagation), and parking a version twice would make
        ``_drain_pending`` spawn two applies for it."""
        for held, _reply in self._pending_remote:
            if held.version == record.version:
                return
        self._pending_remote.append((record, src))

    def _note_remote_apply(self, record: CommitRecord) -> None:
        """Observability for one applied remote record: refresh the LRU
        accounting, measure replication lag (origin commit -> applied
        here, the clock the origin stamped into the record), and span."""
        for oid in touched_oids(record.updates):
            self.storage.cache.put(oid, True)
        if record.committed_at is not None:
            self._replication_lag.observe(self.kernel.now - record.committed_at)
        self._span(record.tid, span.REMOTE_APPLY, origin=record.site)

    def _got_guard(self, record: CommitRecord) -> bool:
        """Fig 13: GotVTS_i >= x.startVTS and GotVTS_i[j] = x.seqno - 1."""
        return (
            self.got_vts.dominates(record.start_vts)
            and self.got_vts[record.site] == record.seqno - 1
        )

    def _apply_remote_inner(self, record: CommitRecord):
        """Apply one remote record; returns its WAL-durability event
        (not yet awaited).  Holds the commit lock briefly: applying
        mutates the same histories the commit path does, which is why
        per-site write throughput shrinks as sites are added even though
        batched replication is cheaper than committing (§8.3)."""
        yield self.commit_lock.acquire()
        try:
            # Authoritative duplicate check under the lock: the got guard
            # was evaluated before this process was spawned, and another
            # apply of the same version may have won the lock first
            # (e.g. the record arrived both by recovery delivery and by a
            # retransmitted batch).  Cset updates are not idempotent, so
            # applying twice would corrupt the site state.
            if self.got_vts[record.site] >= record.seqno:
                return None
            yield self.kernel.timeout(self.costs.apply_remote)
            version = record.version
            self.histories.apply(record.updates, version)
            self.got_vts = self.got_vts.with_entry(record.site, record.seqno)
        finally:
            self.commit_lock.release()
        self._records_by_version[version] = record
        self.stats.remote_applied += 1
        self._note_remote_apply(record)
        return self.storage.log.append({"kind": "remote_apply", "record": record})

    def _apply_remote(self, record: CommitRecord, reply_to: str):
        """Apply + await durability + ACK for a single held-back record
        (the _drain_pending path)."""
        done = yield from self._apply_remote_inner(record)
        if done is None:
            # Lost the duplicate race: someone else applied this version.
            if reply_to is not None:
                self.cast(reply_to, "propagate_ack", tid=record.tid, site=self.site_id)
            return
        yield done  # durable at this site before acknowledging
        if reply_to is not None:  # recovery-staged: nobody to ack
            self.cast(reply_to, "propagate_ack", tid=record.tid, site=self.site_id)
        self._drain_pending()  # our GotVTS advance may unblock held records

    def on_ds_durable(self, src: str, record: CommitRecord, from_site: int):
        if self.committed_vts[record.site] >= record.seqno:
            self.cast(src, "visible_ack", tid=record.tid, site=self.site_id)
            return
        if not self._committed_guard(record):
            # Dedup: DS-DURABLE is re-announced periodically while the
            # origin waits for our visible_ack, which can be a long time
            # if we are missing the record's causal dependencies.
            if all(r.version != record.version for r, _reply in self._pending_ds):
                self._pending_ds.append((record, src))
            return
        self._commit_remote(record, src)
        self._drain_pending()

    def _committed_guard(self, record: CommitRecord) -> bool:
        """Fig 13: CommittedVTS_i >= x.startVTS, CommittedVTS_i[j] =
        x.seqno - 1, and x was received (PROPAGATE applied)."""
        return (
            self.got_vts[record.site] >= record.seqno
            and self.committed_vts.dominates(record.start_vts)
            and self.committed_vts[record.site] == record.seqno - 1
        )

    def _commit_remote(self, record: CommitRecord, reply_to: Optional[str]) -> None:
        self.committed_vts = self.committed_vts.with_entry(record.site, record.seqno)
        self._release_locks(record.tid)
        self.storage.log.append({"kind": "remote_commit", "version": record.version})
        self.stats.remote_commits += 1
        self._span(record.tid, span.REMOTE_COMMIT, origin=record.site)
        if self.trace is not None:
            self.trace.record_site_commit(self.site_id, record.version)
        if reply_to is not None:
            self.cast(reply_to, "visible_ack", tid=record.tid, site=self.site_id)

    # ------------------------------------------------------------------
    # Guard re-evaluation
    # ------------------------------------------------------------------
    def _drain_pending(self) -> None:
        """Re-scan held-back PROPAGATE/DS-DURABLE records until no guard
        newly passes.  Called whenever GotVTS or CommittedVTS advances."""
        progress = True
        while progress:
            progress = False
            for i, (record, reply_to) in enumerate(list(self._pending_remote)):
                if self.got_vts[record.site] >= record.seqno:
                    self._pending_remote.pop(i)
                    if reply_to is not None:  # recovery-staged: nobody to ack
                        self.cast(reply_to, "propagate_ack", tid=record.tid, site=self.site_id)
                    progress = True
                    break
                if self._got_guard(record):
                    self._pending_remote.pop(i)
                    self.spawn_child(
                        self._apply_remote(record, reply_to),
                        name="apply:%s" % record.tid,
                    )
                    # Optimistically advance in this scan; _apply_remote
                    # bumps got_vts at its first step.
                    progress = True
                    break
            for i, (record, reply_to) in enumerate(list(self._pending_ds)):
                if self.committed_vts[record.site] >= record.seqno:
                    self._pending_ds.pop(i)
                    if reply_to is not None:  # recovery-staged: nobody to ack
                        self.cast(reply_to, "visible_ack", tid=record.tid, site=self.site_id)
                    progress = True
                    break
                if self._committed_guard(record):
                    self._pending_ds.pop(i)
                    self._commit_remote(record, reply_to)
                    progress = True
                    break
