"""Asynchronous transaction propagation (paper Fig 13, §5.6).

After a transaction commits locally it is propagated in the background:

1. the origin sends PROPAGATE (in periodic batches -- "each batch remotely
   copies all transactions that committed since the last batch", §6);
2. a receiver applies the updates once it has (a) every transaction that
   causally precedes x per ``x.startVTS`` and (b) all of x's site's
   transactions with smaller seqnos (the GotVTS guard), then ACKs;
3. when enough sites ACKed -- the experiments' definition is *all* sites
   (§8.1), the spec's is f+1 sites per object including its preferred
   site -- the transaction is **disaster-safe durable** and the origin
   broadcasts DS-DURABLE;
4. a receiver *commits* x (advances CommittedVTS, releases x's locks)
   once x is DS-durable and the same causality guards hold against
   CommittedVTS, then replies VISIBLE;
5. when every site replied, x is **globally visible**.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Set, Tuple

from ..core.transaction import CommitRecord
from ..core.updates import touched_oids
from ..net.wire import (
    ack_batch_bytes,
    decode_propagation_batch,
    encode_propagation_batch,
)
from ..obs import trace as span
from ..sim import AllOf, AnyOf, Interrupt


@dataclass
class PropagationTracker:
    """Origin-side state for one committed transaction in flight."""

    record: CommitRecord
    client: Optional[str] = None
    acked: Set[int] = field(default_factory=set)
    visible: Set[int] = field(default_factory=set)
    ds_durable: bool = False
    globally_visible: bool = False
    ds_event: Optional[object] = None
    visible_event: Optional[object] = None
    committed_at: float = 0.0
    ds_at: Optional[float] = None
    visible_at: Optional[float] = None
    #: Monotonic per-server enqueue stamp; orders retransmission casts
    #: the way the legacy full-tracker walk did (enqueue order).
    enqueue_seq: int = 0


class PendingIndex:
    """Seqno-indexed store of parked ``(record, reply_to)`` entries,
    grouped by origin site.

    Replaces the legacy list + restart-scan in ``_drain_pending``: a
    vector-clock advance wakes exactly the entries it unblocks (the
    duplicates at or below the new watermark, plus the next-seqno head)
    instead of rescanning every parked record.  Every entry is stamped
    with a monotonic insertion sequence so ``_drain_pending`` can act on
    candidates in insertion order -- reproducing the legacy scan's
    action order bit-for-bit.
    """

    __slots__ = ("_entries", "_heaps", "_next_seq")

    def __init__(self):
        # (site, seqno) -> (record, reply_to, insert_seq)
        self._entries = {}
        # site -> min-heap of parked seqnos; acted seqnos are pruned
        # lazily (they may already have been popped by unblocked()).
        self._heaps = {}
        self._next_seq = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Tuple[CommitRecord, Optional[str]]]:
        """Yield ``(record, reply_to)`` pairs in insertion order (the
        legacy list's iteration order; for tests and debugging)."""
        for record, reply_to, _seq in sorted(
            self._entries.values(), key=lambda entry: entry[2]
        ):
            yield record, reply_to

    def contains_version(self, record: CommitRecord) -> bool:
        return (record.site, record.seqno) in self._entries

    def add(self, record: CommitRecord, reply_to: Optional[str]) -> bool:
        """Park an entry; returns False (a no-op) if this version is
        already parked -- batches can carry duplicates."""
        key = (record.site, record.seqno)
        if key in self._entries:
            return False
        self._next_seq += 1
        self._entries[key] = (record, reply_to, self._next_seq)
        heap = self._heaps.get(record.site)
        if heap is None:
            heap = self._heaps[record.site] = []
        heapq.heappush(heap, record.seqno)
        return True

    def get(self, site: int, seqno: int):
        """The entry parked at exactly ``(site, seqno)``, or None."""
        return self._entries.get((site, seqno))

    def remove(self, site: int, seqno: int):
        """Pop and return the entry at ``(site, seqno)``, or None."""
        return self._entries.pop((site, seqno), None)

    def sites(self) -> List[int]:
        return list(self._heaps)

    def parked_head(self, site: int) -> Optional[int]:
        """The smallest live parked seqno of ``site``, or None.  Prunes
        stale heap heads (already removed or acted on) lazily; used by
        the online monitor's propagation-gap check."""
        heap = self._heaps.get(site)
        entries = self._entries
        while heap:
            if (site, heap[0]) in entries:
                return heap[0]
            heapq.heappop(heap)
        return None

    def unblocked(self, site: int, watermark: int) -> List[tuple]:
        """Pop and return the entries of ``site`` with seqno <=
        ``watermark`` (duplicates the clock already covers) in seqno
        order.  The entries stay in the version map until the caller
        acts on them via :meth:`remove`."""
        heap = self._heaps.get(site)
        if not heap:
            return []
        out = []
        entries = self._entries
        while heap and heap[0] <= watermark:
            seqno = heapq.heappop(heap)
            entry = entries.get((site, seqno))
            if entry is not None:
                out.append(entry)
        return out


class PropagationMixin:
    # ------------------------------------------------------------------
    # Origin side
    # ------------------------------------------------------------------
    def _enqueue_propagation(self, record: CommitRecord, notify: Optional[str]) -> None:
        self._enqueue_seq += 1
        tracker = PropagationTracker(
            record=record,
            client=notify,
            acked={self.site_id},
            visible={self.site_id},
            ds_event=self.kernel.event(("ds:%s", (record.tid,))),
            visible_event=self.kernel.event(("vis:%s", (record.tid,))),
            committed_at=self.kernel.now,
            enqueue_seq=self._enqueue_seq,
        )
        self._trackers[record.tid] = tracker
        # Resend bookkeeping: entries are appended in committed_at order,
        # so the stale ones _resend_unacked looks for form a prefix.
        self._undurable.append((tracker.committed_at, tracker))
        self._outbox.put(record)
        # A 1-site deployment (or f=0) may already satisfy durability.
        self._maybe_ds(tracker)

    def _propagation_loop(self):
        """Batched propagation: ship everything committed since the last
        batch, then wait for that batch to become DS-durable before the
        next -- this serialization is what yields the [RTTmax, 2·RTTmax]
        DS-durability latency distribution (Fig 19)."""
        try:
            while True:
                if len(self._outbox):
                    first = self._outbox.get_nowait()
                else:
                    index, first = yield AnyOf(
                        [self._outbox.get(), self.kernel.timeout(self._batch_period() * 4)]
                    )
                    if index == 1:
                        # Idle tick: retransmit anything stuck un-acked
                        # (messages lost to partitions/crashes), then wait
                        # for new work again.
                        self._resend_unacked()
                        continue
                records: List[CommitRecord] = [first] + self._outbox.drain()
                self._send_batch(records)
                waits = [
                    self._trackers[r.tid].ds_event
                    for r in records
                    if r.tid in self._trackers and not self._trackers[r.tid].ds_durable
                ]
                if waits:
                    # Wait for the batch to become DS-durable, but no
                    # longer than ~one max round trip: under load a
                    # receiver may still be applying the previous batch,
                    # and stalling dispatch would make the batch period
                    # grow without bound instead of staying ~RTTmax.
                    yield AnyOf(
                        [AllOf(waits), self.kernel.timeout(self._batch_period())]
                    )
                self._resend_unacked()
        except Interrupt:
            return

    def _batch_period(self) -> float:
        """~One maximum round trip from this site (min 5 ms)."""
        return max(0.005, self.network.topology.max_rtt_from(self.site_id))

    def _resend_unacked(self) -> None:
        """Retransmit records whose PROPAGATE (or DS-DURABLE) may have
        been lost -- e.g. dropped by a partition that has since healed.
        Receivers treat duplicates idempotently and simply re-ACK.

        Instead of walking every tracker, this consults two focused
        structures the tracker lifecycle maintains: ``_ds_unvisible``
        (DS-durable trackers still missing VISIBLE acks, re-announced in
        enqueue order like the legacy full walk) and ``_undurable`` (a
        committed_at-ordered deque whose stale entries form a prefix;
        superseded entries -- resent or since-durable trackers -- are
        dropped lazily as they surface at the head)."""
        now = self.kernel.now
        stale = 3.0 * self._batch_period()
        if self._ds_unvisible:
            # Near-sorted already (trackers become DS-durable roughly in
            # enqueue order), so the sort is cheap; it exists to pin the
            # legacy cast order exactly.
            for tracker in sorted(
                self._ds_unvisible.values(), key=lambda t: t.enqueue_seq
            ):
                if tracker.globally_visible:
                    continue
                if now - (tracker.ds_at or now) > stale:
                    for site in self.config.active_sites():
                        if site == self.site_id:
                            continue
                        if site not in tracker.acked:
                            # A site activated after DS durability (site
                            # re-integration) may lack the record itself;
                            # it cannot commit what it never received, so
                            # re-PROPAGATE, not just re-announce.
                            shipped = self._record_for(tracker.record, site)
                            self.cast(
                                self.peers[site],
                                "propagate",
                                size_bytes=shipped.payload_bytes() + 64,
                                records=[shipped],
                                from_site=self.site_id,
                            )
                        if site not in tracker.visible:
                            # VISIBLE acks missing: re-announce DS durability.
                            self.cast(
                                self.peers[site],
                                "ds_durable",
                                record=tracker.record,
                                from_site=self.site_id,
                            )
                    tracker.ds_at = now
        undurable = self._undurable
        resend: List[CommitRecord] = []
        while undurable:
            stamped_at, tracker = undurable[0]
            if tracker.ds_durable or tracker.committed_at != stamped_at:
                # Became durable, or was resent since this entry was
                # appended (its live entry sits further back).
                undurable.popleft()
                continue
            if now - stamped_at <= stale:
                break  # committed_at-ordered: nothing behind is stale
            undurable.popleft()
            resend.append(tracker.record)
            tracker.committed_at = now  # back off further resends
            undurable.append((now, tracker))
        if resend:
            resend.sort(key=lambda r: r.seqno)
            self._send_batch(resend)
            self.stats.inc("retransmissions", len(resend))

    def _record_for(self, record: CommitRecord, site: int) -> CommitRecord:
        """The form of ``record`` shipped to ``site``: the record itself
        under full replication, else trimmed to the updates whose
        containers ``site`` replicates (DESIGN.md §13).  Trimmed records
        keep tid/site/seqno/startVTS, so the destination still advances
        its clocks through the full contiguous stream -- only the data a
        site does not store stays off its wire and out of its WAL."""
        if not self.partial_replication or not record.updates:
            return record
        config = self.config
        keep = [
            u
            for u in record.updates
            if config.container(u.oid.container).replicated_at(site)
        ]
        if len(keep) == len(record.updates):
            return record
        return record.trimmed(keep)

    def _send_batch(self, records: List[CommitRecord]) -> None:
        for record in records:
            self._span(record.tid, span.PROPAGATE_SEND, batch=len(records))
        if self.batching is not None:
            self._send_batch_encoded(records)
            self.stats.inc("batches_sent")
            return
        # Batch-occupancy observability (DESIGN.md §14): recorded in both
        # modes so batching efficacy is measurable against the unbatched
        # baseline.  Observation only -- no simulated events.
        self._prop_batch_hist.observe(float(len(records)))
        if not self.partial_replication:
            size = sum(r.payload_bytes() for r in records) + 64
            for site in self.config.active_sites():
                if site == self.site_id:
                    continue
                self.cast(
                    self.peers[site],
                    "propagate",
                    size_bytes=size,
                    records=records,
                    from_site=self.site_id,
                )
        else:
            for site in self.config.active_sites():
                if site == self.site_id:
                    continue
                shipped = [self._record_for(r, site) for r in records]
                size = sum(r.payload_bytes() for r in shipped) + 64
                self.cast(
                    self.peers[site],
                    "propagate",
                    size_bytes=size,
                    records=shipped,
                    from_site=self.site_id,
                )
        self.stats.inc("batches_sent")

    def _send_batch_encoded(self, records: List[CommitRecord]) -> None:
        """Batched-mode PROPAGATE: one delta-encoded cast per destination
        per ``max_batch`` chunk (see :mod:`repro.net.wire`).  Receivers
        apply the chunk atomically in seqno order and reply with a single
        ``propagate_ack_batch``."""
        cfg = self.batching
        observe = self._prop_batch_hist.observe
        for start in range(0, len(records), cfg.max_batch):
            chunk = records[start : start + cfg.max_batch]
            observe(float(len(chunk)))
            if not self.partial_replication:
                entries, size = encode_propagation_batch(chunk, cfg.delta_vts)
                for site in self.config.active_sites():
                    if site == self.site_id:
                        continue
                    self.cast(
                        self.peers[site],
                        "propagate_batch",
                        size_bytes=size,
                        entries=entries,
                        from_site=self.site_id,
                    )
            else:
                for site in self.config.active_sites():
                    if site == self.site_id:
                        continue
                    shipped = [self._record_for(r, site) for r in chunk]
                    entries, size = encode_propagation_batch(shipped, cfg.delta_vts)
                    self.cast(
                        self.peers[site],
                        "propagate_batch",
                        size_bytes=size,
                        entries=entries,
                        from_site=self.site_id,
                    )

    def on_propagate_ack(self, src: str, tid: str, site: int):
        tracker = self._trackers.get(tid)
        if tracker is None:
            return
        tracker.acked.add(site)
        self._maybe_ds(tracker)

    def on_propagate_ack_batch(self, src: str, tids: List[str], site: int):
        """Batched-mode PROPAGATE acks: one cast acknowledges a whole
        applied chunk.  DS-DURABLE announcements that fire while the acks
        are absorbed are buffered (see ``_maybe_ds``) and broadcast as a
        single ``ds_durable_batch`` per destination, collapsing the
        per-record fan-out that dominates the unbatched wire."""
        buf: List[CommitRecord] = []
        self._ds_buffer = buf
        try:
            for tid in tids:
                tracker = self._trackers.get(tid)
                if tracker is None:
                    continue
                tracker.acked.add(site)
                self._maybe_ds(tracker)
        finally:
            self._ds_buffer = None
        if buf:
            size = ack_batch_bytes(len(buf))
            for peer in self.config.active_sites():
                if peer == self.site_id:
                    continue
                self.cast(
                    self.peers[peer],
                    "ds_durable_batch",
                    size_bytes=size,
                    records=buf,
                    from_site=self.site_id,
                )

    def on_visible_ack(self, src: str, tid: str, site: int):
        tracker = self._trackers.get(tid)
        if tracker is None:
            return
        tracker.visible.add(site)
        self._maybe_visible(tracker)

    def on_visible_ack_batch(self, src: str, tids: List[str], site: int):
        for tid in tids:
            tracker = self._trackers.get(tid)
            if tracker is None:
                continue
            tracker.visible.add(site)
            self._maybe_visible(tracker)

    @staticmethod
    def _commit_time(tracker: PropagationTracker) -> float:
        # Lag is measured from the commit point stamped on the record,
        # not tracker.committed_at: the latter is set after the WAL
        # flush and doubles as the resend-backoff timer.
        if tracker.record.committed_at is not None:
            return tracker.record.committed_at
        return tracker.committed_at

    def _maybe_ds(self, tracker: PropagationTracker) -> None:
        if tracker.ds_durable or not self._ds_condition(tracker):
            return
        tracker.ds_durable = True
        tracker.ds_at = self.kernel.now
        self._ds_unvisible[tracker.record.tid] = tracker
        tracker.ds_event.trigger_once(None)
        self._ds_lag.observe(self.kernel.now - self._commit_time(tracker))
        self._span(tracker.record.tid, span.DS_DURABLE, acked=len(tracker.acked))
        self.storage.log.append({"kind": "ds_durable", "tid": tracker.record.tid})
        if self._ds_buffer is not None:
            # Batched ack processing (on_propagate_ack_batch): defer the
            # broadcast so every record the ack batch made DS-durable
            # ships in one ds_durable_batch per destination.
            self._ds_buffer.append(tracker.record)
        else:
            for site in self.config.active_sites():
                if site != self.site_id:
                    self.cast(
                        self.peers[site],
                        "ds_durable",
                        record=tracker.record,
                        from_site=self.site_id,
                    )
        if tracker.client is not None:
            self.cast(tracker.client, "tx_ds_durable", tid=tracker.record.tid)
        self._maybe_visible(tracker)

    def _ds_condition(self, tracker: PropagationTracker) -> bool:
        if self.ds_mode == "all_sites":
            # §8.1: "we consider a transaction to be disaster-safe durable
            # when it is committed at all sites in the experiment".
            return set(self.config.active_sites()) <= tracker.acked
        # Spec mode (§4.4/Fig 13): f+1 sites replicating each object,
        # including the object's preferred site.
        for oid in touched_oids(tracker.record.updates):
            container = self.config.container(oid.container)
            replicating_acks = {
                s for s in tracker.acked if container.replicated_at(s)
            }
            if len(replicating_acks) < self.f + 1:
                return False
            if container.preferred_site not in tracker.acked:
                return False
        return True

    def _maybe_visible(self, tracker: PropagationTracker) -> None:
        if tracker.globally_visible or not tracker.ds_durable:
            return
        if not set(self.config.active_sites()) <= tracker.visible:
            return
        tracker.globally_visible = True
        tracker.visible_at = self.kernel.now
        tracker.visible_event.trigger_once(None)
        self._visibility_lag.observe(self.kernel.now - self._commit_time(tracker))
        self._span(tracker.record.tid, span.GLOBALLY_VISIBLE)
        self.storage.log.append(
            {"kind": "globally_visible", "tid": tracker.record.tid}
        )
        if tracker.client is not None:
            self.cast(tracker.client, "tx_visible", tid=tracker.record.tid)
        # Fully propagated: retire the tracker (late duplicate acks are
        # ignored; the commit record stays in _records_by_version).
        self._visible_tids.add(tracker.record.tid)
        self._trackers.pop(tracker.record.tid, None)
        self._ds_unvisible.pop(tracker.record.tid, None)

    def recheck_durability(self) -> None:
        """Re-evaluate DS/visibility conditions, e.g. after the active-site
        set shrank during reconfiguration (§5.7)."""
        for tracker in list(self._trackers.values()):
            self._maybe_ds(tracker)
            self._maybe_visible(tracker)

    def rpc_recheck_durability(self):
        self.recheck_durability()
        return "OK"

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    #: Remote records applied per commit-lock acquisition.  Chunking is
    #: what lets replication keep up under commit saturation (a FIFO lock
    #: grants the apply path one turn per queue rotation) while bounding
    #: how long a batch apply can stall committing transactions.
    APPLY_CHUNK = 512

    def on_propagate(self, src: str, records: List[CommitRecord], from_site: int):
        """Apply a propagation batch, acknowledging per record (the
        legacy wire protocol; byte-identical schedules depend on it)."""
        to_ack = yield from self._apply_propagate_batch(src, records)
        for tid in to_ack:
            self.cast(src, "propagate_ack", tid=tid, site=self.site_id)

    def on_propagate_batch(self, src: str, entries: list, from_site: int):
        """Batched-mode PROPAGATE: decode the delta-encoded chunk (see
        :mod:`repro.net.wire`), apply it atomically in seqno order, and
        acknowledge the whole applied run with one cast."""
        records = decode_propagation_batch(entries)
        to_ack = yield from self._apply_propagate_batch(src, records)
        if to_ack:
            self.cast(
                src,
                "propagate_ack_batch",
                size_bytes=ack_batch_bytes(len(to_ack)),
                tids=to_ack,
                site=self.site_id,
            )

    def _apply_propagate_batch(self, src: str, records: List[CommitRecord]):
        """Apply a propagation batch; returns the tids to acknowledge.

        Applies run in chunks under one commit-lock acquisition, and
        durability is awaited once for the whole batch (the WAL
        group-commits) -- otherwise a large batch would serialize
        thousands of lock handoffs and flushes.
        """
        to_ack: List[str] = []
        last_durable = None
        records = list(records)
        i = 0
        while i < len(records):
            record = records[i]
            if self.got_vts[record.site] >= record.seqno:
                # Duplicate (origin re-propagating after recovery): re-ACK.
                to_ack.append(record.tid)
                i += 1
                continue
            if not self._got_guard(record):
                self._park_remote(record, src)
                i += 1
                continue
            yield self.commit_lock.acquire()
            try:
                if self.batching is not None:
                    # Batched mode: plan the chunk against a shadow clock,
                    # charge ONE aggregated apply-cost timeout, then apply
                    # without further yields.  The legacy per-record
                    # timeout costs a kernel event per record per
                    # receiver; the aggregate advances simulated time by
                    # the same total.  The shadow clock reproduces the
                    # incremental guard exactly -- records in a batch are
                    # same-origin contiguous seqnos, so each planned
                    # apply enables the next one's got guard.
                    chunk: List[CommitRecord] = []
                    shadow = self.got_vts
                    while i < len(records) and len(chunk) < self.APPLY_CHUNK:
                        record = records[i]
                        if shadow[record.site] >= record.seqno:
                            to_ack.append(record.tid)
                            i += 1
                            continue
                        if not (
                            shadow.dominates(record.start_vts)
                            and shadow[record.site] == record.seqno - 1
                        ):
                            self._park_remote(record, src)
                            i += 1
                            continue
                        chunk.append(record)
                        shadow = shadow.with_entry(record.site, record.seqno)
                        i += 1
                    if chunk:
                        yield self.kernel.timeout(
                            self.costs.apply_remote * len(chunk)
                        )
                        for record in chunk:
                            version = record.version
                            self.histories.apply(record.updates, version)
                            self.got_vts = self.got_vts.with_entry(
                                record.site, record.seqno
                            )
                            self._records_by_version[version] = record
                            self.stats.inc("remote_applied")
                            self._note_remote_apply(record)
                            last_durable = self.storage.log.append(
                                {"kind": "remote_apply", "record": record}
                            )
                            to_ack.append(record.tid)
                else:
                    applied = 0
                    while i < len(records) and applied < self.APPLY_CHUNK:
                        record = records[i]
                        if self.got_vts[record.site] >= record.seqno:
                            to_ack.append(record.tid)
                            i += 1
                            continue
                        if not self._got_guard(record):
                            self._park_remote(record, src)
                            i += 1
                            continue
                        yield self.kernel.timeout(self.costs.apply_remote)
                        version = record.version
                        self.histories.apply(record.updates, version)
                        self.got_vts = self.got_vts.with_entry(record.site, record.seqno)
                        self._records_by_version[version] = record
                        self.stats.inc("remote_applied")
                        self._note_remote_apply(record)
                        last_durable = self.storage.log.append(
                            {"kind": "remote_apply", "record": record}
                        )
                        to_ack.append(record.tid)
                        applied += 1
                        i += 1
            finally:
                self.commit_lock.release()
            self._drain_pending()
        if last_durable is not None:
            yield last_durable  # batch durable before acknowledging
        return to_ack

    def _park_remote(self, record: CommitRecord, src: Optional[str]) -> None:
        """Hold back a record whose got guard failed, once: batches can
        carry duplicates (retransmissions, recovery delivery racing
        normal propagation), and parking a version twice would make
        ``_drain_pending`` spawn two applies for it."""
        self._pending_remote.add(record, src)

    def _note_remote_apply(self, record: CommitRecord) -> None:
        """Observability for one applied remote record: refresh the LRU
        accounting, measure replication lag (origin commit -> applied
        here, the clock the origin stamped into the record), and span."""
        profiler = self.profiler
        for oid in touched_oids(record.updates):
            self.storage.cache.put(oid, True)
            profiler.record_remote_apply(oid)
        if record.committed_at is not None:
            self._replication_lag.observe(self.kernel.now - record.committed_at)
        tracer = self._tracer
        if tracer is not None and tracer.deep:
            # Deep mode: link the apply back to the origin's send so the
            # propagation hop appears as a causal edge in the span graph.
            tracer.record(
                record.tid,
                span.REMOTE_APPLY,
                self.site_id,
                self.kernel.now,
                parent=tracer.last_seq(record.tid, span.PROPAGATE_SEND),
                origin=record.site,
            )
        else:
            self._span(record.tid, span.REMOTE_APPLY, origin=record.site)

    def _got_guard(self, record: CommitRecord) -> bool:
        """Fig 13: GotVTS_i >= x.startVTS and GotVTS_i[j] = x.seqno - 1."""
        return (
            self.got_vts.dominates(record.start_vts)
            and self.got_vts[record.site] == record.seqno - 1
        )

    def _apply_remote_inner(self, record: CommitRecord):
        """Apply one remote record; returns its WAL-durability event
        (not yet awaited).  Holds the commit lock briefly: applying
        mutates the same histories the commit path does, which is why
        per-site write throughput shrinks as sites are added even though
        batched replication is cheaper than committing (§8.3)."""
        yield self.commit_lock.acquire()
        try:
            # Authoritative duplicate check under the lock: the got guard
            # was evaluated before this process was spawned, and another
            # apply of the same version may have won the lock first
            # (e.g. the record arrived both by recovery delivery and by a
            # retransmitted batch).  Cset updates are not idempotent, so
            # applying twice would corrupt the site state.
            if self.got_vts[record.site] >= record.seqno:
                return None
            yield self.kernel.timeout(self.costs.apply_remote)
            version = record.version
            self.histories.apply(record.updates, version)
            self.got_vts = self.got_vts.with_entry(record.site, record.seqno)
        finally:
            self.commit_lock.release()
        self._records_by_version[version] = record
        self.stats.inc("remote_applied")
        self._note_remote_apply(record)
        return self.storage.log.append({"kind": "remote_apply", "record": record})

    def _apply_remote(self, record: CommitRecord, reply_to: str):
        """Apply + await durability + ACK for a single held-back record
        (the _drain_pending path)."""
        done = yield from self._apply_remote_inner(record)
        if done is None:
            # Lost the duplicate race: someone else applied this version.
            if reply_to is not None:
                self.cast(reply_to, "propagate_ack", tid=record.tid, site=self.site_id)
            return
        yield done  # durable at this site before acknowledging
        if reply_to is not None:  # recovery-staged: nobody to ack
            self.cast(reply_to, "propagate_ack", tid=record.tid, site=self.site_id)
        self._drain_pending()  # our GotVTS advance may unblock held records

    def on_ds_durable(self, src: str, record: CommitRecord, from_site: int):
        if self.committed_vts[record.site] >= record.seqno:
            self._send_visible_ack(src, record.tid)
            return
        if not self._committed_guard(record):
            # Dedup: DS-DURABLE is re-announced periodically while the
            # origin waits for our visible_ack, which can be a long time
            # if we are missing the record's causal dependencies.
            self._pending_ds.add(record, src)
            return
        self._commit_remote(record, src)
        self._drain_pending()

    def on_ds_durable_batch(self, src: str, records: List[CommitRecord], from_site: int):
        """Batched-mode DS-DURABLE: commit every announced record whose
        guards pass (parking the rest exactly as the single-record path
        does), then reply with one ``visible_ack_batch``.  VISIBLE acks
        raised while processing -- including ones ``_drain_pending``
        emits for records this batch unblocked -- are buffered via
        ``_send_visible_ack``."""
        buf = (src, [])
        self._vis_ack_buffer = buf
        try:
            for record in records:
                if self.committed_vts[record.site] >= record.seqno:
                    self._send_visible_ack(src, record.tid)
                    continue
                if not self._committed_guard(record):
                    self._pending_ds.add(record, src)
                    continue
                self._commit_remote(record, src)
            self._drain_pending()
        finally:
            self._vis_ack_buffer = None
        tids = buf[1]
        if tids:
            self.cast(
                src,
                "visible_ack_batch",
                size_bytes=ack_batch_bytes(len(tids)),
                tids=tids,
                site=self.site_id,
            )

    def _send_visible_ack(self, reply_to: str, tid: str) -> None:
        """Send (or, inside a DS batch, buffer) one VISIBLE ack.  The
        buffer only captures acks aimed at the batch's origin; acks owed
        to a different site (pending records parked by an earlier
        announcement) go out individually as before."""
        buf = self._vis_ack_buffer
        if buf is not None and buf[0] == reply_to:
            buf[1].append(tid)
        else:
            self.cast(reply_to, "visible_ack", tid=tid, site=self.site_id)

    def _committed_guard(self, record: CommitRecord) -> bool:
        """Fig 13: CommittedVTS_i >= x.startVTS, CommittedVTS_i[j] =
        x.seqno - 1, and x was received (PROPAGATE applied)."""
        return (
            self.got_vts[record.site] >= record.seqno
            and self.committed_vts.dominates(record.start_vts)
            and self.committed_vts[record.site] == record.seqno - 1
        )

    def _commit_remote(self, record: CommitRecord, reply_to: Optional[str]) -> None:
        self.committed_vts = self.committed_vts.with_entry(record.site, record.seqno)
        self._release_locks(record.tid)
        self.storage.log.append({"kind": "remote_commit", "version": record.version})
        self.stats.inc("remote_commits")
        self._span(record.tid, span.REMOTE_COMMIT, origin=record.site)
        if self.trace is not None:
            self.trace.record_site_commit(self.site_id, record.version)
        if reply_to is not None:
            self._send_visible_ack(reply_to, record.tid)

    # ------------------------------------------------------------------
    # Guard re-evaluation
    # ------------------------------------------------------------------
    def _drain_pending(self) -> None:
        """Wake held-back PROPAGATE/DS-DURABLE records whose guards now
        pass.  Called whenever GotVTS or CommittedVTS advances.

        The legacy implementation rescanned both pending lists from the
        start after every action (O(n) per advance, O(n^2) per burst).
        This version consults the :class:`PendingIndex` so each call
        touches only the records the current clocks unblock, yet
        reproduces the legacy action order exactly:

        * the legacy loop took at most one remote action then one
          DS action per pass, each the first actionable record in list
          order -- i.e. the lowest insertion stamp;
        * GotVTS is **fixed** for the whole call (applies are spawned
          processes that run later), so the remote action sequence is
          computable up front: per origin site, every parked duplicate
          at or below GotVTS plus the next-seqno head if its got guard
          passes, interleaved across sites by insertion stamp;
        * CommittedVTS **advances** during the call (``_commit_remote``
          runs inline), so DS candidates accumulate in a heap keyed by
          insertion stamp: actionability is monotone within a call --
          once a guard passes it stays passed -- and each commit can
          only unblock the committing site's next head plus the heads
          of other sites (whose dominates() test may newly pass).

        ``_drain_scan_steps`` counts examined entries; the perf
        regression tests assert it stays O(unblocked), not O(parked).
        """
        pending_remote = self._pending_remote
        pending_ds = self._pending_ds
        got = self.got_vts
        site_id = self.site_id

        # Remote actions, computable up front because GotVTS is fixed.
        remote_actions = []
        if len(pending_remote):
            for site in pending_remote.sites():
                watermark = got[site]
                for entry in pending_remote.unblocked(site, watermark):
                    self._drain_scan_steps += 1
                    remote_actions.append((entry[2], entry[0], entry[1]))
                head = pending_remote.get(site, watermark + 1)
                if head is not None:
                    self._drain_scan_steps += 1
                    if got.dominates(head[0].start_vts):
                        remote_actions.append((head[2], head[0], head[1]))
            remote_actions.sort()

        # DS candidates: a heap keyed by insertion stamp, re-fed as
        # CommittedVTS advances.
        candidates: list = []
        queued = set()

        def queue_ds_candidates(site: int) -> None:
            watermark = self.committed_vts[site]
            for entry in pending_ds.unblocked(site, watermark):
                self._drain_scan_steps += 1
                key = (site, entry[0].seqno)
                if key not in queued:
                    queued.add(key)
                    heapq.heappush(candidates, (entry[2], site, entry[0].seqno))
            head = pending_ds.get(site, watermark + 1)
            if head is not None and (site, watermark + 1) not in queued:
                self._drain_scan_steps += 1
                if self._committed_guard(head[0]):
                    queued.add((site, watermark + 1))
                    heapq.heappush(candidates, (head[2], site, watermark + 1))

        if len(pending_ds):
            for site in pending_ds.sites():
                queue_ds_candidates(site)

        next_remote = 0
        while True:
            acted = False
            if next_remote < len(remote_actions):
                _stamp, record, reply_to = remote_actions[next_remote]
                next_remote += 1
                pending_remote.remove(record.site, record.seqno)
                if got[record.site] >= record.seqno:
                    # Duplicate of an already-applied version: re-ACK.
                    if reply_to is not None:  # recovery-staged: nobody to ack
                        self.cast(reply_to, "propagate_ack", tid=record.tid, site=site_id)
                else:
                    self.spawn_child(
                        self._apply_remote(record, reply_to),
                        name=("apply:%s", (record.tid,)),
                    )
                acted = True
            while candidates:
                _stamp, site, seqno = heapq.heappop(candidates)
                entry = pending_ds.remove(site, seqno)
                if entry is None:
                    continue
                record, reply_to = entry[0], entry[1]
                if self.committed_vts[site] >= seqno:
                    if reply_to is not None:  # recovery-staged: nobody to ack
                        self._send_visible_ack(reply_to, record.tid)
                else:
                    self._commit_remote(record, reply_to)
                    if len(pending_ds):
                        for other in pending_ds.sites():
                            queue_ds_candidates(other)
                acted = True
                break
            if not acted:
                break
