"""The Walter server: one per site (paper §5.1), assembled from the
protocol mixins that mirror the paper's figures:

* :class:`~repro.server.execution.ExecutionMixin` -- Fig 10,
* :class:`~repro.server.fast_commit.FastCommitMixin` -- Fig 11,
* :class:`~repro.server.slow_commit.SlowCommitMixin` -- Fig 12,
* :class:`~repro.server.propagation.PropagationMixin` -- Fig 13,
* :class:`~repro.server.recovery.RecoveryMixin` -- §5.7.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional

from ..core.history import SiteHistories
from ..core.objects import ObjectId
from ..core.transaction import TxStatus
from ..core.versions import VectorTimestamp, Version
from ..net import Host, Network
from ..obs import AccessProfiler, MetricsRegistry, Observability, log_buckets
from ..obs import trace as span
from ..sim import Kernel, Lock, Resource, Store
from ..spec.checker import ExecutionTrace
from ..storage import SiteStorage
from .execution import ExecutionMixin
from .fast_commit import FastCommitMixin
from .propagation import PendingIndex, PropagationMixin, PropagationTracker
from .recovery import RecoveryMixin
from .slow_commit import PreparedLock, SlowCommitMixin
from .state import ConfigView, LeaseConfig, ServerCosts


class ServerStats:
    """Counters used by tests and the benchmark harness.

    Historically a flat dataclass; now a compatibility view over
    per-site counters in the deployment's metrics registry
    (:mod:`repro.obs`).  Attribute reads/writes (including ``+= 1``)
    proxy to registry counters named ``server.<field>`` labelled with
    this server's site, so the same numbers appear in benchmark metric
    snapshots without double bookkeeping.
    """

    FIELDS = (
        "started",
        "commits",
        "aborts",
        "read_only_commits",
        "slow_commit_attempts",
        "slow_commits",
        "remote_applied",
        "remote_commits",
        "batches_sent",
        "coalesced_reads",
        "resumed_propagations",
        "retransmissions",
        "sealed_holes",
        "gc_removed",
        "gc_records_removed",
    )

    __slots__ = ("_registry", "_site", "_handles")

    def __init__(self, registry: Optional[MetricsRegistry] = None, site: int = 0):
        object.__setattr__(self, "_registry", registry or MetricsRegistry())
        object.__setattr__(self, "_site", site)
        object.__setattr__(self, "_handles", {})

    def _counter(self, name: str):
        handle = self._handles.get(name)
        if handle is None:
            handle = self._handles[name] = self._registry.counter(
                "server.%s" % name, site=self._site
            )
        return handle

    def inc(self, name: str, n: int = 1) -> None:
        """Fast-path increment: one handle lookup instead of the
        ``__getattr__`` read + ``__setattr__`` write that ``+= 1`` costs.
        Hot protocol paths (commit, propagation apply) use this."""
        self._counter(name).inc(n)

    def __getattr__(self, name: str) -> int:
        if name in ServerStats.FIELDS:
            return self._counter(name).value
        raise AttributeError(name)

    def __setattr__(self, name: str, value) -> None:
        if name in ServerStats.FIELDS:
            self._counter(name).set(value)
        else:
            object.__setattr__(self, name, value)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in ServerStats.FIELDS}

    def __repr__(self) -> str:
        return "ServerStats(%s)" % ", ".join(
            "%s=%d" % (k, v) for k, v in self.as_dict().items()
        )


class WalterServer(
    ExecutionMixin,
    FastCommitMixin,
    SlowCommitMixin,
    PropagationMixin,
    RecoveryMixin,
    Host,
):
    """A site's Walter server.

    Parameters
    ----------
    config:
        The server's view of container placement and leases.
    storage:
        The site's replicated cluster storage (WAL + checkpoints); owned
        by the deployment so replacement servers can recover from it.
    peers:
        site id -> server address, for every site (including this one).
    f:
        Disaster-safe fault-tolerance parameter (§4.4); default 1.
    ds_mode:
        ``"all_sites"`` (the experiments' definition, §8.1) or
        ``"f_plus_1"`` (the Fig 13 condition).
    """

    def __init__(
        self,
        kernel: Kernel,
        network: Network,
        site_id: int,
        name: str,
        config: ConfigView,
        storage: SiteStorage,
        peers: Dict[int, str],
        costs: Optional[ServerCosts] = None,
        f: int = 1,
        ds_mode: str = "all_sites",
        trace: Optional[ExecutionTrace] = None,
        anti_starvation: bool = False,
        anti_starvation_delay: float = 0.010,
        takeover: bool = False,
        obs: Optional[Observability] = None,
        leases: Optional[LeaseConfig] = None,
        partial_replication: bool = False,
        batching=None,
    ):
        super().__init__(kernel, network, site_id, name, takeover=takeover)
        if ds_mode not in ("all_sites", "f_plus_1"):
            raise ValueError("unknown ds_mode %r" % (ds_mode,))
        self.site_id = site_id
        self.config = config
        self.storage = storage
        self.peers = dict(peers)
        self.costs = costs or ServerCosts()
        self.f = f
        self.ds_mode = ds_mode
        self.trace = trace
        self.anti_starvation = anti_starvation
        self.anti_starvation_delay = anti_starvation_delay
        self.leases = leases or LeaseConfig()
        #: Partial replication (DESIGN.md §13): propagation trims commit
        #: records down to the updates each destination replicates (the
        #: seqno/commit metadata still reaches every site, so vector
        #: clocks, the got-guard, and 2PC lock release are untouched),
        #: and remote reads prefer the nearest replica.  Off by default:
        #: the trimmed wire messages and read routing would perturb
        #: pinned schedule digests of full-replication runs.
        self.partial_replication = partial_replication
        #: Hot-path batching (DESIGN.md §14): a
        #: :class:`~repro.server.batching.BatchingConfig` enables the
        #: adaptive WAL group-commit window, delta-encoded propagation
        #: batches with per-batch ack/DS/VISIBLE casts, and read
        #: coalescing.  ``None`` (the default) takes exactly the legacy
        #: per-record paths -- pinned schedule digests depend on it.
        from .batching import BatchingConfig

        self.batching = BatchingConfig.coerce(batching)

        n_sites = len(network.topology)
        # Fig 9 variables.
        self.curr_seqno = 0
        self.committed_vts = VectorTimestamp.zeros(n_sites)
        self.got_vts = VectorTimestamp.zeros(n_sites)
        self.histories = SiteHistories()
        # Protocol machinery.
        self.locked: Dict[ObjectId, str] = {}
        self.commit_lock = Lock(kernel, name="%s.commit" % name)
        self.cpu = Resource(kernel, self.costs.cores, name="%s.cpu" % name)
        self._txs: Dict[str, object] = {}
        self._records_by_version: Dict[Version, object] = {}
        self._trackers: Dict[str, PropagationTracker] = {}
        self._outbox = Store(kernel, name="%s.outbox" % name)
        self._pending_remote = PendingIndex()
        self._pending_ds = PendingIndex()
        #: Entries examined by _drain_pending; perf regression tests
        #: assert it stays proportional to unblocked work, not queue size.
        self._drain_scan_steps = 0
        # Resend bookkeeping (see _resend_unacked): trackers awaiting DS
        # durability in committed_at order, and DS-durable trackers still
        # missing VISIBLE acks.
        self._undurable = deque()
        self._ds_unvisible: Dict[str, PropagationTracker] = {}
        self._enqueue_seq = 0
        self._visible_tids = set()
        # Batching scratch state (always allocated so the off path pays
        # only a None check): in-flight coalescable remote reads, and the
        # per-handler buffers that collapse DS-DURABLE broadcasts and
        # VISIBLE acks into per-batch casts (see PropagationMixin).
        self._read_inflight: Dict[tuple, object] = {}
        self._ds_buffer = None
        self._vis_ack_buffer = None
        self._delayed_until: Dict[ObjectId, float] = {}
        # Commit-path hardening state (DESIGN.md §9).
        #: tid -> lease deadline of the active transaction (refreshed on
        #: every access RPC); expired entries are reaped by the sweeper.
        self._tx_deadlines: Dict[str, float] = {}
        #: tid -> PreparedLock for prepare locks held at this site.
        self._prepared: Dict[str, PreparedLock] = {}
        #: tid -> (outcome, decided_at): the at-most-once 2PC decision
        #: table (coordinator decisions + decisions delivered to us).
        self._decisions: Dict[str, tuple] = {}
        #: idempotency token -> (status, recorded_at) for tx_commit
        #: retries whose original reply was lost.
        self._commit_outcomes: Dict[str, tuple] = {}
        #: tids with a commit RPC currently executing (duplicate commit
        #: requests park until the first lands its outcome).
        self._commit_inflight = set()
        # Observability: a deployment shares one Observability across its
        # servers; a standalone server gets a private one so the stats
        # view always has a registry behind it.
        self.obs = obs or Observability()
        self._tracer = self.obs.tracer
        #: Per-site access profiler (hot keys, per-container traffic);
        #: exported via Deployment.metrics_snapshot()["access_profile"].
        self.profiler = AccessProfiler(site_id)
        registry = self.obs.registry
        self._commit_latency = registry.histogram("server.commit_latency", site=site_id)
        # Always-on lag histograms (the tracer, when enabled, additionally
        # retains per-transaction timelines): replication lag is recorded
        # at the *receiving* site, ds/visibility lag at the origin.
        self._replication_lag = registry.histogram("server.replication_lag", site=site_id)
        self._ds_lag = registry.histogram("server.ds_lag", site=site_id)
        self._visibility_lag = registry.histogram("server.visibility_lag", site=site_id)
        #: Propagation batch occupancy (records per PROPAGATE cast per
        #: destination) -- observed in both modes so batching efficacy is
        #: comparable against the unbatched baseline (DESIGN.md §14).
        self._prop_batch_hist = registry.histogram(
            "server.propagation_batch", buckets=log_buckets(1.0, 4096.0), site=site_id
        )
        self.stats = ServerStats(registry, site_id)
        self._prop_loop = None
        self._gc_loop = None
        self._sweep_loop = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        super().start()
        if self._prop_loop is None or self._prop_loop.done:
            self._prop_loop = self.kernel.spawn(
                self._propagation_loop(), name="%s.propagation" % self.address
            )

    def stop(self) -> None:
        if self._prop_loop is not None and not self._prop_loop.done:
            self._prop_loop.interrupt("stopped")
        if self._gc_loop is not None and not self._gc_loop.done:
            self._gc_loop.interrupt("stopped")
        if self._sweep_loop is not None and not self._sweep_loop.done:
            self._sweep_loop.interrupt("stopped")
        super().stop()

    def enable_checkpointing(self, interval: float = 30.0) -> None:
        self.storage.attach_checkpointer(self.state_snapshot, interval=interval)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _span(self, tid: str, name: str, **extra):
        """Emit one transaction span event at the current simulated time.

        The single ``None`` check is the entire cost when tracing is off.
        Returns the recorded event (or None) so deep milestones can chain
        parent edges off it.
        """
        if self._tracer is not None:
            return self._tracer.record(
                tid, name, self.site_id, self.kernel.now, **extra
            )
        return None

    def _deep(self, tid: str, name: str, parent: Optional[int] = None, **extra):
        """Emit a deep-tracing milestone: recorded only when the tracer
        runs in deep mode, so default-mode trace streams (and the pinned
        schedule digests over them) are unchanged."""
        tracer = self._tracer
        if tracer is not None and tracer.deep:
            return tracer.record(
                tid, name, self.site_id, self.kernel.now, parent=parent, **extra
            )
        return None

    def _deep_ctx(self, tid: str, name: str):
        """Span context ``(tid, parent_seq)`` for an outgoing RPC, or
        None outside deep mode; the callee records the receive edge."""
        tracer = self._tracer
        if tracer is not None and tracer.deep:
            return (tid, tracer.last_seq(tid, name))
        return None

    def _on_rpc_span(self, method: str, span_ctx: tuple) -> None:
        tid, parent = span_ctx
        self._deep(tid, span.RPC_RECV, parent=parent, method=method)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def gc_watermark(self) -> VectorTimestamp:
        """The site-wide GC watermark: the meet of ``CommittedVTS`` with
        every active transaction's ``startVTS``.  No local snapshot the
        site will still serve can be below it, so history entries and
        commit records covered by it are collectible.

        The own-site entry is additionally held below any own commit
        still mid-propagation: until globally visible it could be
        abandoned by aggressive site removal (§4.4), and a version folded
        into a cset base cannot be truncated back out."""
        watermark = self.committed_vts
        for tx in self._txs.values():
            watermark = watermark.meet(tx.start_vts)
        in_flight = [
            t.record.seqno
            for t in self._trackers.values()
            if t.record.site == self.site_id
        ]
        if in_flight:
            bound = min(in_flight) - 1
            if bound < watermark[self.site_id]:
                watermark = watermark.with_entry(self.site_id, bound)
        return watermark

    def gc_histories(self) -> int:
        """Garbage-collect below the watermark: drop superseded
        regular-object versions, fold locally-replicated cset histories
        into their cached base, prune settled commit records, and refresh
        the watermark gauge.  Returns the history-entry count collected
        (record pruning is tracked separately in ``gc_records_removed``).

        Skipped while the site is inactive (mid-removal/re-integration,
        §5.7): recovery may still truncate an abandoned suffix, and a
        version folded into a cset base can never be truncated out."""
        if not self.config.is_active(self.site_id):
            return 0
        watermark = self.gc_watermark()
        removed = self.histories.gc(
            watermark,
            fold_cset=lambda oid: self.config.replicated_at(oid, self.site_id),
        )
        self.stats.gc_records_removed += self._gc_records(watermark)
        self._refresh_gc_gauges(watermark)
        return removed

    def _gc_records(self, watermark: VectorTimestamp) -> int:
        """Prune commit records no snapshot or propagation duty can still
        need: covered by the watermark, not mid-propagation, and (for
        own-site records) already globally visible, so a restart will
        never have to resume them.  Histories no longer rebuild from
        records at restore (they checkpoint their own state), so this
        bounds ``_records_by_version``; the cost is that this site can no
        longer serve ``recovery_fetch`` below its pruned frontier."""
        drop = [
            version
            for version, record in self._records_by_version.items()
            if watermark.visible(version)
            and record.tid not in self._trackers
            and (version.site != self.site_id or record.tid in self._visible_tids)
        ]
        for version in drop:
            record = self._records_by_version.pop(version)
            self._visible_tids.discard(record.tid)
        return len(drop)

    def _refresh_gc_gauges(self, watermark: Optional[VectorTimestamp] = None) -> None:
        if watermark is None:
            watermark = self.gc_watermark()
        registry = self.obs.registry
        registry.gauge("server.gc_watermark", site=self.site_id).set(
            sum(watermark)
        )
        registry.gauge("server.history_entries", site=self.site_id).set(
            self.histories.total_entries()
        )
        registry.gauge("server.commit_records", site=self.site_id).set(
            len(self._records_by_version)
        )

    def start_gc(self, interval: float = 5.0) -> None:
        """Run history garbage collection periodically (§6: "the
        persistent log is periodically garbage collected")."""
        from ..sim import Interrupt

        def loop():
            try:
                while True:
                    yield self.kernel.timeout(interval)
                    self.stats.gc_removed += self.gc_histories()
            except Interrupt:
                return

        self._gc_loop = self.kernel.spawn(loop(), name="%s.gc" % self.address)

    def lease_sweep(self) -> int:
        """One pass of the commit-path lease sweeper (DESIGN.md §9):

        * reap active transactions whose lease expired (client crashed or
          its abort was lost) so their ``startVTS`` stops pinning the GC
          watermark;
        * start a decision query for every prepare lock past its lease
          (presumed abort: the lock is only released once the coordinator
          answers ABORTED/UNKNOWN -- see ``_resolve_orphan_lock``);
        * drop expired anti-starvation entries that were never
          re-accessed;
        * expire at-most-once state (commit outcomes, 2PC decisions)
          past its retention window.

        Returns the number of transactions reaped.  The sweep itself
        sends no messages -- orphan queries run as child processes -- so
        an idle sweeper does not perturb simulated timings."""
        now = self.kernel.now
        reaped = 0
        # Every table is guarded by a truthiness check: the sweeper runs
        # a few times per simulated second on every server, and an idle
        # sweep must not allocate five list copies of empty dicts.
        if self._tx_deadlines:
            for tid, deadline in list(self._tx_deadlines.items()):
                if tid not in self._txs:
                    del self._tx_deadlines[tid]
                    continue
                if deadline > now:
                    continue
                tx = self._txs.pop(tid)
                del self._tx_deadlines[tid]
                if tx.status is TxStatus.ACTIVE:
                    tx.mark_aborted()
                if self._tracer is not None:
                    # The reaped transaction will never emit a terminal
                    # span; mark its trace complete so the ring buffer
                    # may evict it.
                    self._tracer.finish(tid)
                reaped += 1
        if reaped:
            self.obs.registry.counter("tx.reaped", site=self.site_id).inc(reaped)
        if self._prepared and self.chaos_bug != "leak_prepare_locks":
            for tid, info in list(self._prepared.items()):
                if info.deadline <= now and not info.querying:
                    self.spawn_child(
                        self._resolve_orphan_lock(tid),
                        name="orphan:%s@%d" % (tid, self.site_id),
                    )
        if self._delayed_until:
            for oid, until in list(self._delayed_until.items()):
                if until <= now:
                    del self._delayed_until[oid]
        if self._commit_outcomes:
            retention = self.leases.outcome_retention
            for key, (_status, at) in list(self._commit_outcomes.items()):
                if at + retention <= now:
                    del self._commit_outcomes[key]
        if self._decisions:
            retention = self.leases.outcome_retention
            for tid, (_outcome, at) in list(self._decisions.items()):
                if at + retention <= now:
                    del self._decisions[tid]
        return reaped

    def start_sweeper(self, interval: Optional[float] = None) -> None:
        """Run :meth:`lease_sweep` periodically (alongside the GC loop);
        interval defaults to ``leases.sweep_interval``."""
        from ..sim import Interrupt

        period = self.leases.sweep_interval if interval is None else interval

        def loop():
            try:
                while True:
                    yield self.kernel.timeout(period)
                    self.lease_sweep()
            except Interrupt:
                return

        self._sweep_loop = self.kernel.spawn(loop(), name="%s.sweeper" % self.address)

    def _reply_dropped(self, method: str) -> None:
        self.obs.registry.counter(
            "server.replies_dropped", site=self.site_id, method=method
        ).inc()

    def __repr__(self) -> str:
        return "<WalterServer %s site=%d seqno=%d>" % (
            self.address,
            self.site_id,
            self.curr_seqno,
        )
