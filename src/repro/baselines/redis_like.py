"""Redis-like baseline for the ReTwis comparison (paper §8.7).

A single-threaded in-memory key-value server with the native atomic
operations ReTwis uses -- INCR, SET/GET, LPUSH/LRANGE, SADD/SMEMBERS,
MGET -- and master-slave asynchronous replication ("In Redis, cross-site
replication is based on a master-slave scheme"), so slaves are read-only.

Single-threadedness is modelled as a CPU resource with capacity 1: every
command serializes, which is faithful to Redis's execution model.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import WalterError
from ..net import Host, Network
from ..server.state import ServerCosts
from ..sim import Interrupt, Kernel, Resource


class ReadOnlySlaveError(WalterError):
    """Updates are only allowed at the master."""


class RedisServer(Host):
    """One Redis instance (master or slave)."""

    def __init__(
        self,
        kernel: Kernel,
        network: Network,
        site,
        name: str,
        costs: Optional[ServerCosts] = None,
        role: str = "master",
        slaves: Optional[List[str]] = None,
        ship_interval: float = 0.005,
    ):
        super().__init__(kernel, network, site, name)
        self.costs = costs or ServerCosts(cores=1, read_op=35e-6, write_op=35e-6)
        self.role = role
        self.slave_addresses = list(slaves or [])
        self.cpu = Resource(kernel, 1, name="%s.cpu" % name)  # single thread
        self.data: Dict[str, Any] = {}
        self._oplog: List[tuple] = []
        self.ship_interval = ship_interval
        self._shipper = None

    def start(self) -> None:
        super().start()
        if self.role == "master" and self.slave_addresses and self._shipper is None:
            self._shipper = self.kernel.spawn(
                self._ship_loop(), name="%s.shipper" % self.address
            )

    def _write_guard(self) -> None:
        if self.role != "master":
            raise ReadOnlySlaveError("slave %s is read-only" % self.address)

    def _log(self, *op) -> None:
        if self.slave_addresses:
            self._oplog.append(op)

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def rpc_get(self, key: str):
        yield from self.cpu.use(self.costs.read_op)
        return self.data.get(key)

    def rpc_set(self, key: str, value: Any):
        self._write_guard()
        yield from self.cpu.use(self.costs.write_op)
        self.data[key] = value
        self._log("set", key, value)
        return "OK"

    def rpc_incr(self, key: str):
        self._write_guard()
        yield from self.cpu.use(self.costs.write_op)
        value = int(self.data.get(key, 0)) + 1
        self.data[key] = value
        self._log("set", key, value)
        return value

    def rpc_lpush(self, key: str, value: Any):
        self._write_guard()
        yield from self.cpu.use(self.costs.write_op)
        lst = self.data.setdefault(key, [])
        lst.insert(0, value)
        self._log("lpush", key, value)
        return len(lst)

    def rpc_lrange(self, key: str, start: int, stop: int):
        yield from self.cpu.use(self.costs.read_op)
        lst = self.data.get(key, [])
        # Redis LRANGE stop is inclusive.
        return list(lst[start: stop + 1])

    def rpc_sadd(self, key: str, member: Any):
        self._write_guard()
        yield from self.cpu.use(self.costs.write_op)
        members = self.data.setdefault(key, set())
        added = 0 if member in members else 1
        members.add(member)
        self._log("sadd", key, member)
        return added

    def rpc_srem(self, key: str, member: Any):
        self._write_guard()
        yield from self.cpu.use(self.costs.write_op)
        members = self.data.setdefault(key, set())
        removed = 1 if member in members else 0
        members.discard(member)
        self._log("srem", key, member)
        return removed

    def rpc_smembers(self, key: str):
        yield from self.cpu.use(self.costs.read_op)
        return set(self.data.get(key, set()))

    def rpc_mget(self, keys: List[str]):
        yield from self.cpu.use(
            self.costs.read_op + 0.25 * self.costs.read_op * max(0, len(keys) - 1)
        )
        return [self.data.get(k) for k in keys]

    # ------------------------------------------------------------------
    # Master-slave replication
    # ------------------------------------------------------------------
    def _ship_loop(self):
        try:
            while True:
                yield self.kernel.timeout(self.ship_interval)
                if not self._oplog:
                    continue
                batch, self._oplog = self._oplog, []
                size = 64 + 48 * len(batch)
                for address in self.slave_addresses:
                    self.cast(address, "replicate", size_bytes=size, batch=batch)
        except Interrupt:
            return

    def on_replicate(self, src: str, batch):
        for op in batch:
            yield from self.cpu.use(self.costs.apply_remote)
            kind, key = op[0], op[1]
            if kind == "set":
                self.data[key] = op[2]
            elif kind == "lpush":
                self.data.setdefault(key, []).insert(0, op[2])
            elif kind == "sadd":
                self.data.setdefault(key, set()).add(op[2])
            elif kind == "srem":
                self.data.setdefault(key, set()).discard(op[2])
