"""Berkeley-DB-style baseline: a primary-copy store with snapshot
isolation and asynchronous (log-shipping) replication (paper §8.2).

The paper compares Walter's base throughput against Berkeley DB 11gR2
"configured ... with snapshot isolation ... two replicas with
asynchronous replication.  Since BDB allows updates at only one replica
(the primary)".  This module reproduces that protocol shape:

* one primary server executes all transactions under SI (MVCC with a
  single commit order and first-committer-wins write conflicts),
* commit records are flushed with group commit,
* committed updates ship asynchronously, in batches, to read-only
  replicas, which apply them in commit order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import TransactionStateError, WalterError
from ..net import Host, Network
from ..server.state import ServerCosts
from ..sim import Interrupt, Kernel, Lock, Resource
from ..storage import DiskLog

COMMITTED = "COMMITTED"
ABORTED = "ABORTED"


class ReadOnlyReplicaError(WalterError):
    """Writes are only allowed at the primary."""


@dataclass
class BDBTx:
    tid: str
    start_ts: int
    reads: List[str] = field(default_factory=list)
    writes: Dict[str, Any] = field(default_factory=dict)
    status: str = "ACTIVE"
    commit_ts: Optional[int] = None


class BDBServer(Host):
    """Primary or read-only replica of the baseline database."""

    def __init__(
        self,
        kernel: Kernel,
        network: Network,
        site,
        name: str,
        costs: Optional[ServerCosts] = None,
        role: str = "primary",
        replicas: Optional[List[str]] = None,
        flush_latency: float = 0.001,
        ship_interval: float = 0.005,
    ):
        super().__init__(kernel, network, site, name)
        self.costs = costs or ServerCosts()
        self.role = role
        self.replica_addresses = list(replicas or [])
        self.cpu = Resource(kernel, self.costs.cores, name="%s.cpu" % name)
        self.commit_lock = Lock(kernel, name="%s.commit" % name)
        self.disk = DiskLog(kernel, flush_latency=flush_latency, name="%s.disk" % name)
        self.ship_interval = ship_interval
        # MVCC store: key -> list of (commit_ts, value), ascending.
        self._versions: Dict[str, List[Tuple[int, Any]]] = {}
        self._commit_ts = itertools.count(1)
        self._applied_ts = 0  # newest commit timestamp visible here
        self._txs: Dict[str, BDBTx] = {}
        # Commit history for SI conflict checks: (commit_ts, write keys).
        self._commit_log: List[Tuple[int, frozenset]] = []
        self._ship_queue: List[Tuple[int, Dict[str, Any]]] = []
        self._shipper = None
        self.replicated_upto = 0  # on replicas: last applied commit ts
        #: tid -> (start_ts, commit_ts) of committed transactions -- the
        #: SI witness the protocol-zoo oracle checks reads against.
        self.tx_timestamps: Dict[str, Tuple[int, int]] = {}

    def start(self) -> None:
        super().start()
        if self.role == "primary" and self.replica_addresses and self._shipper is None:
            self._shipper = self.kernel.spawn(
                self._ship_loop(), name="%s.shipper" % self.address
            )

    # ------------------------------------------------------------------
    # Snapshot reads
    # ------------------------------------------------------------------
    def _read_at(self, key: str, snapshot_ts: int) -> Any:
        for commit_ts, value in reversed(self._versions.get(key, [])):
            if commit_ts <= snapshot_ts:
                return value
        return None

    def _install(self, key: str, commit_ts: int, value: Any) -> None:
        self._versions.setdefault(key, []).append((commit_ts, value))

    # ------------------------------------------------------------------
    # Autocommit single-op transactions (the Fig 16 workload)
    # ------------------------------------------------------------------
    def rpc_get(self, key: str):
        yield from self.cpu.use(self.costs.read_op)
        return self._read_at(key, self._applied_ts)

    def rpc_put(self, key: str, value: Any):
        if self.role != "primary":
            raise ReadOnlyReplicaError("replica %s is read-only" % self.address)
        yield from self.cpu.use(self.costs.write_op)
        yield self.commit_lock.acquire()
        try:
            yield self.kernel.timeout(self.costs.commit_critical)
            commit_ts = next(self._commit_ts)
            self._install(key, commit_ts, value)
            self._applied_ts = commit_ts
            self._commit_log.append((commit_ts, frozenset([key])))
            self._ship_queue.append((commit_ts, {key: value}))
        finally:
            self.commit_lock.release()
        yield self.disk.append(("put", key))
        return COMMITTED

    # ------------------------------------------------------------------
    # Multi-op SI transactions
    # ------------------------------------------------------------------
    def rpc_tx_begin(self, tid: str):
        yield from self.cpu.use(self.costs.read_op * 0.5)
        tx = BDBTx(tid=tid, start_ts=self._applied_ts)
        self._txs[tid] = tx
        return tx.start_ts

    def _tx(self, tid: str) -> BDBTx:
        tx = self._txs.get(tid)
        if tx is None or tx.status != "ACTIVE":
            raise TransactionStateError("unknown/finished tx %r" % (tid,))
        return tx

    def rpc_tx_get(self, tid: str, key: str):
        yield from self.cpu.use(self.costs.read_op)
        tx = self._tx(tid)
        if key in tx.writes:
            return tx.writes[key]
        tx.reads.append(key)
        return self._read_at(key, tx.start_ts)

    def rpc_tx_put(self, tid: str, key: str, value: Any):
        if self.role != "primary":
            raise ReadOnlyReplicaError("replica %s is read-only" % self.address)
        yield from self.cpu.use(self.costs.write_op)
        self._tx(tid).writes[key] = value
        return "OK"

    def rpc_tx_commit(self, tid: str):
        yield from self.cpu.use(self.costs.commit_op)
        tx = self._tx(tid)
        if not tx.writes:
            tx.status = COMMITTED
            tx.commit_ts = tx.start_ts
            self.tx_timestamps[tid] = (tx.start_ts, tx.start_ts)
            self._txs.pop(tid, None)
            return COMMITTED
        yield self.commit_lock.acquire()
        try:
            yield self.kernel.timeout(self.costs.commit_critical)
            write_set = frozenset(tx.writes)
            conflict = any(
                ts > tx.start_ts and keys & write_set
                for ts, keys in self._commit_log
            )
            if conflict:
                tx.status = ABORTED
                self._txs.pop(tid, None)
                return ABORTED
            commit_ts = next(self._commit_ts)
            for key, value in tx.writes.items():
                self._install(key, commit_ts, value)
            self._applied_ts = commit_ts
            self._commit_log.append((commit_ts, write_set))
            self._ship_queue.append((commit_ts, dict(tx.writes)))
            tx.commit_ts = commit_ts
            self.tx_timestamps[tid] = (tx.start_ts, commit_ts)
        finally:
            self.commit_lock.release()
        yield self.disk.append(("commit", tid))
        tx.status = COMMITTED
        self._txs.pop(tid, None)
        return COMMITTED

    def rpc_tx_abort(self, tid: str):
        tx = self._txs.pop(tid, None)
        if tx is not None:
            tx.status = ABORTED
        return ABORTED

    # ------------------------------------------------------------------
    # Asynchronous replication (primary -> replicas)
    # ------------------------------------------------------------------
    def _ship_loop(self):
        try:
            while True:
                yield self.kernel.timeout(self.ship_interval)
                if not self._ship_queue:
                    continue
                batch, self._ship_queue = self._ship_queue, []
                size = 64 + sum(
                    32 + sum(len(str(v)) for v in writes.values())
                    for _ts, writes in batch
                )
                for address in self.replica_addresses:
                    self.cast(address, "apply_batch", size_bytes=size, batch=batch)
        except Interrupt:
            return

    def on_apply_batch(self, src: str, batch):
        for commit_ts, writes in batch:
            if commit_ts <= self.replicated_upto:
                continue
            yield from self.cpu.use(self.costs.apply_remote)
            for key, value in writes.items():
                self._install(key, commit_ts, value)
            self.replicated_upto = commit_ts
            self._applied_ts = max(self._applied_ts, commit_ts)


def build_bdb_pair(
    kernel: Kernel,
    network: Network,
    costs: Optional[ServerCosts] = None,
    primary_site=0,
    replica_site=1,
    flush_latency: float = 0.001,
):
    """The §8.2 setup: primary (private cluster) + one async replica (CA)."""
    primary = BDBServer(
        kernel, network, primary_site, "bdb-primary",
        costs=costs, role="primary", replicas=["bdb-replica"],
        flush_latency=flush_latency,
    )
    replica = BDBServer(
        kernel, network, replica_site, "bdb-replica",
        costs=costs, role="replica", flush_latency=flush_latency,
    )
    replica.start()
    primary.start()
    return primary, replica
