"""Comparison systems: Berkeley-DB-like primary-copy SI, Redis-like KV."""

from .bdb import BDBServer, ReadOnlyReplicaError, build_bdb_pair
from .redis_like import ReadOnlySlaveError, RedisServer

__all__ = [
    "BDBServer",
    "ReadOnlyReplicaError",
    "ReadOnlySlaveError",
    "RedisServer",
    "build_bdb_pair",
]
