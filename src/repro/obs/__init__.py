"""Sim-time observability: metrics registry, transaction tracing, lag.

One :class:`Observability` instance is shared by every component of a
deployment (servers, network, storage, benchmarks).  The metrics
registry is always on -- counters and gauges are cheap attribute bumps.
Transaction tracing is opt-in (``Deployment(tracing=True)``); when off,
components hold ``tracer = None`` and each hook costs one ``None`` check.

All timestamps come from the simulation kernel, so two runs with the
same seed produce byte-identical trace dumps and metric snapshots.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .export import dump_jsonl, format_timeline, format_timelines, trace_events_jsonl
from .lag import LagReport, compute_lag_report, lag_summary, update_lag_gauges
from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
)
from .trace import (
    ABORT,
    DISKLOG_FLUSH,
    DS_DURABLE,
    EXECUTE,
    FAST_COMMIT,
    FAULT,
    GLOBALLY_VISIBLE,
    PROPAGATE_SEND,
    REMOTE_APPLY,
    REMOTE_COMMIT,
    SLOW_COMMIT_COMMIT,
    SLOW_COMMIT_PREPARE,
    SpanEvent,
    Tracer,
    TxTrace,
)


class Observability:
    """The per-deployment bundle: one registry, optionally one tracer."""

    def __init__(self, tracing: bool = False, trace_capacity: int = 8192):
        self.registry = MetricsRegistry()
        self.tracer: Optional[Tracer] = Tracer(trace_capacity) if tracing else None

    @property
    def tracing(self) -> bool:
        return self.tracer is not None

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return self.registry.snapshot()

    def lag_report(self, n_sites: int, at: Optional[float] = None) -> LagReport:
        """Recompute lag from retained traces and refresh the gauges."""
        return update_lag_gauges(self.registry, self.tracer, n_sites, at=at)


__all__ = [
    "ABORT",
    "Counter",
    "DEFAULT_BUCKETS",
    "DISKLOG_FLUSH",
    "DS_DURABLE",
    "EXECUTE",
    "FAST_COMMIT",
    "FAULT",
    "GLOBALLY_VISIBLE",
    "Gauge",
    "Histogram",
    "LagReport",
    "MetricsRegistry",
    "Observability",
    "PROPAGATE_SEND",
    "REMOTE_APPLY",
    "REMOTE_COMMIT",
    "SLOW_COMMIT_COMMIT",
    "SLOW_COMMIT_PREPARE",
    "SpanEvent",
    "Tracer",
    "TxTrace",
    "compute_lag_report",
    "dump_jsonl",
    "format_timeline",
    "format_timelines",
    "lag_summary",
    "log_buckets",
    "trace_events_jsonl",
    "update_lag_gauges",
]
