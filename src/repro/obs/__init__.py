"""Sim-time observability: metrics registry, transaction tracing, lag.

One :class:`Observability` instance is shared by every component of a
deployment (servers, network, storage, benchmarks).  The metrics
registry is always on -- counters and gauges are cheap attribute bumps.
Transaction tracing is opt-in (``Deployment(tracing=True)``); when off,
components hold ``tracer = None`` and each hook costs one ``None`` check.

All timestamps come from the simulation kernel, so two runs with the
same seed produce byte-identical trace dumps and metric snapshots.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .export import dump_jsonl, format_timeline, format_timelines, trace_events_jsonl
from .lag import LagReport, compute_lag_report, lag_summary, update_lag_gauges
from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
)
from .trace import (
    ABORT,
    CLIENT_COMMIT_REPLY,
    CLIENT_COMMIT_SEND,
    COMMIT_CPU,
    COMMIT_LOCK_ACQUIRED,
    COMMIT_RPC_BEGIN,
    COMMIT_RPC_END,
    COMMIT_VOTES,
    DISKLOG_FLUSH,
    DS_DURABLE,
    EXECUTE,
    FAST_COMMIT,
    FAULT,
    GLOBALLY_VISIBLE,
    PROPAGATE_SEND,
    REMOTE_APPLY,
    REMOTE_COMMIT,
    RPC_RECV,
    SLOW_COMMIT_COMMIT,
    SLOW_COMMIT_PREPARE,
    SpanEvent,
    TERMINAL_EVENTS,
    Tracer,
    TxTrace,
    WAL_FLUSH,
)
from .artifact import (
    collect_run,
    diff_artifacts,
    diff_outcomes,
    format_diff,
    load_artifact,
    summarize_artifact,
    write_artifact,
    write_run_artifact,
)
from .critical_path import (
    BudgetTable,
    TxBudget,
    aggregate_budgets,
    compute_budget,
    format_budget_table,
)
from .monitor import Alert, OnlineMonitor
from .profile import AccessProfiler, SpaceSaving


class Observability:
    """The per-deployment bundle: one registry, optionally one tracer.

    ``tracing`` accepts ``False`` (off), ``True`` (lifecycle spans), or
    ``"deep"`` (lifecycle spans + commit-path milestones and causal
    parent edges, the input to critical-path attribution).
    """

    def __init__(self, tracing=False, trace_capacity: int = 8192):
        self.registry = MetricsRegistry()
        if tracing:
            self.tracer: Optional[Tracer] = Tracer(
                trace_capacity, deep=(tracing == "deep")
            )
        else:
            self.tracer = None

    @property
    def tracing(self) -> bool:
        return self.tracer is not None

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return self.registry.snapshot()

    def lag_report(self, n_sites: int, at: Optional[float] = None) -> LagReport:
        """Recompute lag from retained traces and refresh the gauges."""
        return update_lag_gauges(self.registry, self.tracer, n_sites, at=at)


__all__ = [
    "ABORT",
    "AccessProfiler",
    "Alert",
    "BudgetTable",
    "CLIENT_COMMIT_REPLY",
    "CLIENT_COMMIT_SEND",
    "COMMIT_CPU",
    "COMMIT_LOCK_ACQUIRED",
    "COMMIT_RPC_BEGIN",
    "COMMIT_RPC_END",
    "COMMIT_VOTES",
    "Counter",
    "DEFAULT_BUCKETS",
    "DISKLOG_FLUSH",
    "DS_DURABLE",
    "EXECUTE",
    "FAST_COMMIT",
    "FAULT",
    "GLOBALLY_VISIBLE",
    "Gauge",
    "Histogram",
    "LagReport",
    "MetricsRegistry",
    "Observability",
    "OnlineMonitor",
    "PROPAGATE_SEND",
    "REMOTE_APPLY",
    "REMOTE_COMMIT",
    "RPC_RECV",
    "SLOW_COMMIT_COMMIT",
    "SLOW_COMMIT_PREPARE",
    "SpaceSaving",
    "SpanEvent",
    "TERMINAL_EVENTS",
    "Tracer",
    "TxBudget",
    "TxTrace",
    "WAL_FLUSH",
    "aggregate_budgets",
    "collect_run",
    "compute_budget",
    "compute_lag_report",
    "diff_artifacts",
    "diff_outcomes",
    "dump_jsonl",
    "format_budget_table",
    "format_diff",
    "load_artifact",
    "summarize_artifact",
    "write_artifact",
    "write_run_artifact",
    "format_timeline",
    "format_timelines",
    "lag_summary",
    "log_buckets",
    "trace_events_jsonl",
    "update_lag_gauges",
]
