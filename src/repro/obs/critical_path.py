"""Critical-path attribution over deep traces: where commit time goes.

Deep tracing (``Deployment(tracing="deep")``) records fine-grained
milestones along a transaction's commit path.  In canonical causal
order:

``client.commit_send`` -> ``commit.rpc_begin`` -> ``commit.cpu`` ->
[``slow_commit.prepare`` -> ``commit.votes``] -> ``commit.lock_acquired``
-> ``fast_commit`` | ``slow_commit.commit`` -> ``disklog_flush`` ->
``commit.rpc_end`` -> ``client.commit_reply``

Because each transaction's commit is a single causal chain (the client
blocks on the commit RPC; the RPC handler blocks on CPU admission, the
2PC round, the commit lock, and the WAL flush in that order), the
consecutive differences between milestones *are* the critical-path
segments, and they sum to the client-observed end-to-end latency by
construction -- the latency-budget table reproduces the fig18/fig20
measurements exactly, not approximately.

Segments (each named for the milestone that ends it):

=================  ====================================================
``request_net``    client -> server request hop + mailbox queueing
``cpu``            CPU admission queueing + the commit op service time
``prepare_setup``  slow commit only: vote-collection setup
``2pc_votes``      slow commit only: the cross-site prepare round trip
``lock_wait``      waiting on the site commit lock
``commit_critical`` the serialized conflict-check/apply critical section
``wal_flush``      group-commit WAL flush (disk latency + batching)
``post_commit``    propagation enqueue + handler epilogue
``reply_net``      server -> client reply hop
=================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from .trace import (
    CLIENT_COMMIT_REPLY,
    CLIENT_COMMIT_SEND,
    COMMIT_CPU,
    COMMIT_LOCK_ACQUIRED,
    COMMIT_RPC_BEGIN,
    COMMIT_RPC_END,
    COMMIT_VOTES,
    DISKLOG_FLUSH,
    FAST_COMMIT,
    SLOW_COMMIT_COMMIT,
    SLOW_COMMIT_PREPARE,
    TxTrace,
)

#: (milestone event name, segment ending at it); the first present
#: milestone anchors the chain and has no segment.
_COMMIT_MILESTONE = "<commit>"  # placeholder resolved per commit kind
SEGMENTS = (
    (CLIENT_COMMIT_SEND, None),
    (COMMIT_RPC_BEGIN, "request_net"),
    (COMMIT_CPU, "cpu"),
    (SLOW_COMMIT_PREPARE, "prepare_setup"),
    (COMMIT_VOTES, "2pc_votes"),
    (COMMIT_LOCK_ACQUIRED, "lock_wait"),
    (_COMMIT_MILESTONE, "commit_critical"),
    (DISKLOG_FLUSH, "wal_flush"),
    (COMMIT_RPC_END, "post_commit"),
    (CLIENT_COMMIT_REPLY, "reply_net"),
)

#: Segment display order for tables and artifacts.
SEGMENT_ORDER = tuple(label for _name, label in SEGMENTS if label is not None)


@dataclass
class TxBudget:
    """One transaction's critical-path latency budget."""

    tid: str
    kind: str  # "fast" | "slow"
    t_start: float
    total: float
    segments: Dict[str, float] = field(default_factory=dict)
    #: True when the budget spans the full client-observed round trip
    #: (both client milestones present), not just the server-side window.
    client_measured: bool = False


def compute_budget(trace: TxTrace) -> Optional[TxBudget]:
    """Attribute one committed transaction's latency to path segments.

    Returns None for traces without a commit event or with fewer than
    two milestones (nothing to attribute).  Segment values are the
    differences between consecutive *present* milestones, so absent ones
    (e.g. the 2PC pair on a fast commit) simply merge into the next
    segment and the sum always telescopes to ``total``.
    """
    commit = trace.commit_event
    if commit is None:
        return None
    kind = "fast" if commit.name == FAST_COMMIT else "slow"
    commit_name = FAST_COMMIT if kind == "fast" else SLOW_COMMIT_COMMIT
    times: Dict[str, float] = {}
    for event in trace.events:
        if event.name not in times:
            times[event.name] = event.t

    anchor_t: Optional[float] = None
    segments: Dict[str, float] = {}
    for name, label in SEGMENTS:
        if name == _COMMIT_MILESTONE:
            name = commit_name
        t = times.get(name)
        if t is None:
            continue
        if anchor_t is None:
            anchor_t = t
            t_start = t
        elif label is not None:
            segments[label] = t - anchor_t
            anchor_t = t
    if anchor_t is None or not segments:
        return None
    return TxBudget(
        tid=trace.tid,
        kind=kind,
        t_start=t_start,
        total=anchor_t - t_start,
        segments=segments,
        client_measured=(
            CLIENT_COMMIT_SEND in times and CLIENT_COMMIT_REPLY in times
        ),
    )


def _percentile(sorted_values: List[float], pct: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, int(len(sorted_values) * pct / 100.0 + 0.5) - 1)
    return sorted_values[min(rank, len(sorted_values) - 1)]


@dataclass
class BudgetTable:
    """Per-commit-class aggregation of transaction budgets."""

    #: class name ("fast"/"slow") -> {count, total: {...}, segments: {...}}
    classes: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"classes": self.classes}


def aggregate_budgets(
    traces: Iterable[TxTrace], client_only: bool = False
) -> BudgetTable:
    """Build the latency-budget table from retained traces.

    ``client_only=True`` keeps only budgets covering the full client
    round trip (the fig18/fig20 measurement window); otherwise budgets
    falling back to the server-side window are aggregated too.
    """
    budgets: List[TxBudget] = []
    for trace in traces:
        budget = compute_budget(trace)
        if budget is None:
            continue
        if client_only and not budget.client_measured:
            continue
        budgets.append(budget)
    table = BudgetTable()
    for kind in ("fast", "slow"):
        kind_budgets = [b for b in budgets if b.kind == kind]
        if not kind_budgets:
            continue
        totals = sorted(b.total for b in kind_budgets)
        n = len(kind_budgets)
        seg_sums: Dict[str, float] = {}
        for budget in kind_budgets:
            for label, value in budget.segments.items():
                seg_sums[label] = seg_sums.get(label, 0.0) + value
        total_sum = sum(totals)
        table.classes[kind] = {
            "count": n,
            "total": {
                "mean": round(total_sum / n, 9),
                "p50": round(_percentile(totals, 50.0), 9),
                "p95": round(_percentile(totals, 95.0), 9),
                "p99": round(_percentile(totals, 99.0), 9),
                "p999": round(_percentile(totals, 99.9), 9),
            },
            "segments": {
                label: {
                    "mean": round(seg_sums[label] / n, 9),
                    "share": round(
                        seg_sums[label] / total_sum if total_sum else 0.0, 6
                    ),
                }
                for label in SEGMENT_ORDER
                if label in seg_sums
            },
        }
    return table


def format_budget_table(table: BudgetTable) -> str:
    """Render the latency budget as an aligned text table (ms)."""
    if not table.classes:
        return "latency budget: no committed transactions traced"
    lines: List[str] = []
    for kind in ("fast", "slow"):
        cls = table.classes.get(kind)
        if cls is None:
            continue
        total = cls["total"]
        lines.append(
            "%s commit (n=%d): total mean %.3fms  p50 %.3fms  p95 %.3fms  "
            "p99 %.3fms  p99.9 %.3fms"
            % (
                kind,
                cls["count"],
                total["mean"] * 1e3,
                total["p50"] * 1e3,
                total["p95"] * 1e3,
                total["p99"] * 1e3,
                total["p999"] * 1e3,
            )
        )
        for label in SEGMENT_ORDER:
            seg = cls["segments"].get(label)
            if seg is None:
                continue
            lines.append(
                "  %-16s %9.3fms  %5.1f%%"
                % (label, seg["mean"] * 1e3, seg["share"] * 100.0)
            )
    return "\n".join(lines)
