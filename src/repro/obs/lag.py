"""Derived lag reporting: replication, disaster-safe durability, visibility.

Walter's evaluation treats "how far behind is a remote site" as three
separate clocks, all started at the origin-site commit:

* **replication lag** -- until the remote site *applied* the updates
  (GotVTS advanced; the data is there but not yet readable),
* **ds-durability lag** -- until enough sites acked that the transaction
  survives a site disaster (Fig 19: between RTTmax and 2*RTTmax), and
* **visibility lag** -- until every site *committed* it (CommittedVTS
  advanced everywhere; snapshots at every site now include it).

All three are computed from the tracer's retained span events and pushed
into registry gauges, so benchmark reports read them the same way they
read counters.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from .trace import Tracer, TxTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..bench.metrics import LatencyRecorder
    from .metrics import MetricsRegistry


def _recorder(name: str) -> "LatencyRecorder":
    # Imported lazily: repro.bench pulls in the deployment (and therefore
    # the server, which imports repro.obs), so a module-level import here
    # would be circular.
    from ..bench.metrics import LatencyRecorder

    return LatencyRecorder(name)


class LagReport:
    """Per-site lag samples distilled from a :class:`Tracer`."""

    def __init__(self, n_sites: int):
        self.n_sites = n_sites
        #: Origin-commit -> remote-apply, keyed by the *remote* site.
        self.replication: Dict[int, "LatencyRecorder"] = {
            s: _recorder("replication_lag@%d" % s) for s in range(n_sites)
        }
        #: Commit -> ds-durable / globally-visible, keyed by *origin* site.
        self.ds_durability: Dict[int, "LatencyRecorder"] = {
            s: _recorder("ds_lag@%d" % s) for s in range(n_sites)
        }
        self.visibility: Dict[int, "LatencyRecorder"] = {
            s: _recorder("visibility_lag@%d" % s) for s in range(n_sites)
        }

    def add_trace(self, trace: TxTrace) -> None:
        origin = trace.origin_site
        if origin is None or trace.commit_event is None:
            return
        for site in range(self.n_sites):
            if site == origin:
                continue
            lag = trace.replication_lag(site)
            if lag is not None:
                self.replication[site].record(lag)
        ds = trace.ds_lag()
        if ds is not None and origin < self.n_sites:
            self.ds_durability[origin].record(ds)
        vis = trace.visibility_lag()
        if vis is not None and origin < self.n_sites:
            self.visibility[origin].record(vis)


def compute_lag_report(tracer: Optional[Tracer], n_sites: int) -> LagReport:
    """Fold every retained trace into per-site lag recorders."""
    report = LagReport(n_sites)
    if tracer is not None:
        for trace in tracer.traces():
            report.add_trace(trace)
    return report


def update_lag_gauges(
    registry: "MetricsRegistry",
    tracer: Optional[Tracer],
    n_sites: int,
    at: Optional[float] = None,
) -> LagReport:
    """Publish mean/p95 of each lag into registry gauges.

    Gauge names: ``lag.replication.{mean,p95}`` (labelled by the remote
    site) and ``lag.{ds_durability,visibility}.{mean,p95}`` (labelled by
    the origin site).  Sites with no samples publish nothing, so a
    snapshot distinguishes "no traffic" from "zero lag".
    """
    report = compute_lag_report(tracer, n_sites)
    families = (
        ("lag.replication", report.replication),
        ("lag.ds_durability", report.ds_durability),
        ("lag.visibility", report.visibility),
    )
    for family, recorders in families:
        for site, recorder in recorders.items():
            if not len(recorder):
                continue
            registry.gauge("%s.mean" % family, site=site).set(recorder.mean, at=at)
            registry.gauge("%s.p95" % family, site=site).set(recorder.p95, at=at)
    return report


def lag_summary(report: LagReport) -> List[Dict[str, float]]:
    """Per-site rows (dicts) for table rendering; milliseconds."""
    rows = []
    for site in range(report.n_sites):
        row: Dict[str, float] = {"site": site}
        for key, recorder in (
            ("replication", report.replication[site]),
            ("ds", report.ds_durability[site]),
            ("visibility", report.visibility[site]),
        ):
            if len(recorder):
                row["%s_mean_ms" % key] = recorder.mean * 1e3
                row["%s_p95_ms" % key] = recorder.p95 * 1e3
                row["%s_n" % key] = float(len(recorder))
        rows.append(row)
    return rows
