"""Run-artifact CLI: ``python -m repro.obs summarize|diff``.

``summarize FILE``
    Print a one-screen summary of a JSONL run artifact (latency budgets,
    histogram quantiles, hot keys).

``diff BASELINE CURRENT [--threshold 0.10]``
    Compare two artifacts of the same scenario; exit 1 if any latency
    budget, histogram quantile, or throughput counter regressed past the
    threshold.  CI uses this as its observability regression gate.

``diff BASELINE CURRENT --outcomes-only``
    Exact-equality check of outcome counters only (commits, aborts,
    remote applies, durable records); timing metrics are ignored.  CI
    uses this to pin that batching changes schedules, never results.
"""

from __future__ import annotations

import argparse
import sys

from .artifact import (
    diff_artifacts,
    diff_outcomes,
    format_diff,
    load_artifact,
    summarize_artifact,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="summarize one run artifact")
    p_sum.add_argument("artifact", help="JSONL run artifact")

    p_diff = sub.add_parser("diff", help="diff two run artifacts")
    p_diff.add_argument("baseline", help="baseline JSONL artifact")
    p_diff.add_argument("current", help="current JSONL artifact")
    p_diff.add_argument(
        "--threshold", type=float, default=0.10,
        help="relative regression threshold (default 0.10 = 10%%)",
    )
    p_diff.add_argument(
        "--outcomes-only", action="store_true",
        help="compare outcome counters exactly and ignore timing; any "
        "difference in commits/aborts/applies/records is a failure",
    )

    args = parser.parse_args(argv)
    if args.command == "summarize":
        print(summarize_artifact(load_artifact(args.artifact)))
        return 0
    if args.outcomes_only:
        mismatches, notes = diff_outcomes(
            load_artifact(args.baseline), load_artifact(args.current)
        )
        print(format_diff(mismatches, notes))
        return 1 if mismatches else 0
    regressions, notes = diff_artifacts(
        load_artifact(args.baseline),
        load_artifact(args.current),
        threshold=args.threshold,
    )
    print(format_diff(regressions, notes))
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
