"""Run artifacts: deterministic JSONL dumps of a run's observability,
and the summarize/diff logic behind ``python -m repro.obs``.

A run artifact captures everything the observability stack knows at the
end of a run, one JSON object per line:

* ``meta`` -- scenario name plus caller-supplied context (seed, sim
  time, configuration knobs);
* ``counter`` / ``gauge`` -- every registry counter and gauge, keyed
  ``name{label=value,...}``;
* ``hist`` -- every registry histogram, reduced to count/mean/quantiles;
* ``budget`` -- the per-commit-class latency-budget table (deep tracing
  only; see :mod:`repro.obs.critical_path`);
* ``profile`` -- the per-site access profiler snapshot.

Artifacts are byte-identical across same-seed runs (every value derives
from simulated time), which is what makes :func:`diff_artifacts` a
meaningful regression gate: any difference is a behavior change, and
latency quantiles/budgets moving past a threshold is a regression, not
noise.  CI runs ``python -m repro.obs diff baseline.jsonl current.jsonl``
and fails the build on a non-zero exit.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from .critical_path import SEGMENT_ORDER, aggregate_budgets

#: Ignore latency increases smaller than this (seconds): quantile
#: interpolation over coarse log buckets can wiggle by microseconds.
ABS_FLOOR = 5e-5


def collect_run(world, name: str, meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Gather one run's artifact data from a live deployment."""
    snap = world.metrics_snapshot()
    out: Dict[str, Any] = {
        "meta": dict(
            {"name": name, "sim_time": round(world.kernel.now, 9)}, **(meta or {})
        ),
        "counters": snap["counters"],
        "gauges": snap["gauges"],
        "hists": {
            key: {
                "count": h["count"],
                "mean": round(h["sum"] / h["count"], 9) if h["count"] else 0.0,
                "p50": h["p50"],
                "p95": h["p95"],
                "p99": h["p99"],
                "p999": h["p999"],
                "max": h["max"],
            }
            for key, h in snap["histograms"].items()
        },
        "profiles": {str(site): prof for site, prof in snap["access_profile"].items()},
        "budgets": {},
    }
    tracer = world.obs.tracer
    if tracer is not None and tracer.deep:
        table = aggregate_budgets(tracer.traces())
        out["budgets"] = table.classes
    return out


def write_run_artifact(
    path, world, name: str, meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Collect and write one run artifact as JSONL; returns the data."""
    data = collect_run(world, name, meta)
    write_artifact(path, data)
    return data


def write_artifact(path, data: Dict[str, Any]) -> None:
    lines: List[str] = [_line({"kind": "meta", **data["meta"]})]
    for key in sorted(data["counters"]):
        lines.append(_line({"kind": "counter", "key": key, "value": data["counters"][key]}))
    for key in sorted(data["gauges"]):
        lines.append(_line({"kind": "gauge", "key": key, "value": data["gauges"][key]}))
    for key in sorted(data["hists"]):
        lines.append(_line({"kind": "hist", "key": key, **data["hists"][key]}))
    for cls in sorted(data["budgets"]):
        lines.append(_line({"kind": "budget", "class": cls, **data["budgets"][cls]}))
    for site in sorted(data["profiles"], key=int):
        lines.append(_line({"kind": "profile", **data["profiles"][site]}))
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")


def _line(obj: Dict[str, Any]) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def load_artifact(path) -> Dict[str, Any]:
    """Load a JSONL run artifact back into :func:`collect_run` shape."""
    data: Dict[str, Any] = {
        "meta": {},
        "counters": {},
        "gauges": {},
        "hists": {},
        "budgets": {},
        "profiles": {},
    }
    with open(path) as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            obj = json.loads(raw)
            kind = obj.pop("kind")
            if kind == "meta":
                data["meta"] = obj
            elif kind == "counter":
                data["counters"][obj["key"]] = obj["value"]
            elif kind == "gauge":
                data["gauges"][obj["key"]] = obj["value"]
            elif kind == "hist":
                data["hists"][obj.pop("key")] = obj
            elif kind == "budget":
                data["budgets"][obj.pop("class")] = obj
            elif kind == "profile":
                data["profiles"][str(obj["site"])] = obj
    return data


def summarize_artifact(data: Dict[str, Any]) -> str:
    """Human-oriented one-screen summary of one artifact."""
    meta = data["meta"]
    lines = [
        "run: %s" % meta.get("name", "?"),
        "  meta: %s" % json.dumps(
            {k: v for k, v in sorted(meta.items()) if k != "name"}, sort_keys=True
        ),
        "  counters: %d  gauges: %d  histograms: %d"
        % (len(data["counters"]), len(data["gauges"]), len(data["hists"])),
    ]
    for cls in ("fast", "slow"):
        budget = data["budgets"].get(cls)
        if budget is None:
            continue
        total = budget["total"]
        lines.append(
            "  %s commit (n=%d): mean %.3fms p50 %.3fms p99 %.3fms p99.9 %.3fms"
            % (
                cls,
                budget["count"],
                total["mean"] * 1e3,
                total["p50"] * 1e3,
                total["p99"] * 1e3,
                total["p999"] * 1e3,
            )
        )
        for label in SEGMENT_ORDER:
            seg = budget["segments"].get(label)
            if seg is not None:
                lines.append(
                    "    %-16s %9.3fms  %5.1f%%"
                    % (label, seg["mean"] * 1e3, seg["share"] * 100.0)
                )
    for key in sorted(data["hists"]):
        h = data["hists"][key]
        if not h["count"]:
            continue
        lines.append(
            "  %s: n=%d mean %.3fms p99 %.3fms p99.9 %.3fms"
            % (key, h["count"], h["mean"] * 1e3, h["p99"] * 1e3, h["p999"] * 1e3)
        )
    for site in sorted(data["profiles"], key=int):
        prof = data["profiles"][site]
        hot = prof["hot_keys"][:3]
        lines.append(
            "  site %s profile: %d observations, top %s"
            % (
                site,
                prof["observations"],
                ", ".join("%s(%d)" % (e["key"], e["count"]) for e in hot) or "-",
            )
        )
    return "\n".join(lines)


def diff_artifacts(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    threshold: float = 0.10,
) -> Tuple[List[str], List[str]]:
    """Compare two artifacts; returns ``(regressions, notes)``.

    Regressions (what CI fails on):

    * a latency-budget total or segment mean grew by more than
      ``threshold`` (relative) and :data:`ABS_FLOOR` (absolute);
    * a histogram p99/p99.9 grew the same way;
    * a throughput counter (``server.commits``) dropped by more than
      ``threshold``.

    Everything else that moved is reported as a note.  Latencies getting
    *faster* and counters growing are notes, never failures.
    """
    regressions: List[str] = []
    notes: List[str] = []

    def check_latency(what: str, base: float, cur: float) -> None:
        if base is None or cur is None:
            return
        delta = cur - base
        if delta > ABS_FLOOR and (base == 0.0 or delta / base > threshold):
            regressions.append(
                "%s: %.3fms -> %.3fms (+%.1f%%)"
                % (what, base * 1e3, cur * 1e3,
                   (delta / base * 100.0) if base else float("inf"))
            )
        elif -delta > ABS_FLOOR and base and -delta / base > threshold:
            notes.append(
                "%s improved: %.3fms -> %.3fms" % (what, base * 1e3, cur * 1e3)
            )

    for cls in sorted(set(baseline["budgets"]) | set(current["budgets"])):
        b, c = baseline["budgets"].get(cls), current["budgets"].get(cls)
        if b is None or c is None:
            notes.append("budget class %r only in %s" % (cls, "current" if b is None else "baseline"))
            continue
        for stat in ("mean", "p50", "p99", "p999"):
            check_latency("budget[%s].total.%s" % (cls, stat), b["total"][stat], c["total"][stat])
        for label in SEGMENT_ORDER:
            bs, cs = b["segments"].get(label), c["segments"].get(label)
            if bs is not None and cs is not None:
                check_latency("budget[%s].%s" % (cls, label), bs["mean"], cs["mean"])

    for key in sorted(set(baseline["hists"]) & set(current["hists"])):
        if "flush_batch" in key:
            # Batch-size distribution, not a latency: bigger batches are
            # usually better, so never fail on it.
            continue
        b, c = baseline["hists"][key], current["hists"][key]
        if not b["count"] or not c["count"]:
            continue
        for stat in ("p99", "p999"):
            check_latency("hist[%s].%s" % (key, stat), b[stat], c[stat])

    for key in sorted(set(baseline["counters"]) & set(current["counters"])):
        b, c = baseline["counters"][key], current["counters"][key]
        if b == c:
            continue
        if key.startswith("server.commits") and b > 0 and (b - c) / b > threshold:
            regressions.append("counter %s dropped: %d -> %d" % (key, b, c))
        else:
            notes.append("counter %s: %s -> %s" % (key, b, c))

    return regressions, notes


#: Counters that describe *what happened* in a run rather than how fast
#: it happened: transaction verdicts, replication application counts,
#: and durable-record totals.  Two runs of the same workload that differ
#: only in scheduling efficiency (e.g. ``Deployment(batching=...)`` on
#: vs off) must agree on every one of these exactly -- batching is
#: allowed to move latencies and message counts, never outcomes.
OUTCOME_COUNTER_PREFIXES = (
    "server.commits",
    "server.aborts",
    "server.started",
    "server.remote_applied",
    "server.remote_commits",
    "server.read_only_commits",
    "server.slow_commits",
    "disklog.records",
    "tx.reaped",
)


def _is_outcome_counter(key: str) -> bool:
    return any(key.startswith(p + "{") or key == p for p in OUTCOME_COUNTER_PREFIXES)


def diff_outcomes(
    baseline: Dict[str, Any], current: Dict[str, Any]
) -> Tuple[List[str], List[str]]:
    """Compare only the outcome counters of two artifacts, exactly.

    This is the behavior-transparency gate for optimizations that are
    allowed to change timing but not results: any whitelisted counter
    (:data:`OUTCOME_COUNTER_PREFIXES`) that differs -- or exists in only
    one artifact -- is a mismatch.  Timing metrics (histograms, gauges,
    budgets) and traffic counters (flushes, messages, bytes) are ignored
    entirely; what moved there is summarized as notes.
    """
    mismatches: List[str] = []
    notes: List[str] = []
    base = {k: v for k, v in baseline["counters"].items() if _is_outcome_counter(k)}
    cur = {k: v for k, v in current["counters"].items() if _is_outcome_counter(k)}
    for key in sorted(set(base) | set(cur)):
        if key not in base or key not in cur:
            mismatches.append(
                "outcome counter %s only in %s"
                % (key, "current" if key not in base else "baseline")
            )
        elif base[key] != cur[key]:
            mismatches.append(
                "outcome counter %s: %s -> %s" % (key, base[key], cur[key])
            )
    if not mismatches:
        notes.append("%d outcome counters identical" % len(base))
    timing_moved = sum(
        1
        for key in set(baseline["counters"]) & set(current["counters"])
        if not _is_outcome_counter(key)
        and baseline["counters"][key] != current["counters"][key]
    )
    if timing_moved:
        notes.append("%d non-outcome counters differ (allowed)" % timing_moved)
    return mismatches, notes


def format_diff(
    regressions: List[str], notes: List[str], max_notes: int = 20
) -> str:
    lines: List[str] = []
    if regressions:
        lines.append("REGRESSIONS (%d):" % len(regressions))
        lines.extend("  ! %s" % r for r in regressions)
    else:
        lines.append("no regressions")
    if notes:
        lines.append("notes (%d):" % len(notes))
        lines.extend("  - %s" % n for n in notes[:max_notes])
        if len(notes) > max_notes:
            lines.append("  ... %d more" % (len(notes) - max_notes))
    return "\n".join(lines)
