"""Exporters: JSON-lines event dumps and human-readable timelines.

The JSONL dump is the machine-readable interface (one event per line, in
global emission order); the timeline printer is the "why was this
transaction slow?" view, showing each lifecycle phase with its offset
from the transaction's first event.
"""

from __future__ import annotations

import json
from typing import IO, List, Optional, Union

from .trace import Tracer, TxTrace


def trace_events_jsonl(tracer: Tracer) -> str:
    """Every retained span event as JSON lines, in emission order.

    Deterministic for a seeded run: event ordering follows the kernel's
    scheduling order and all timestamps are simulated time.
    """
    lines = [
        json.dumps(event.to_dict(), sort_keys=False, separators=(",", ":"))
        for event in tracer.events()
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def dump_jsonl(tracer: Tracer, dest: Union[str, IO[str]]) -> int:
    """Write the JSONL dump to a path or file object; returns #events."""
    text = trace_events_jsonl(tracer)
    if hasattr(dest, "write"):
        dest.write(text)
    else:
        with open(dest, "w") as fh:
            fh.write(text)
    return tracer.events_recorded if not text else text.count("\n")


def format_timeline(trace: TxTrace) -> str:
    """Render one transaction's spans as an offset-annotated timeline::

        tx-42 (slow commit, origin site 0)
          +0.000ms  execute              site=0
          +1.207ms  slow_commit.prepare  site=0
          ...
    """
    if not trace.events:
        return "%s (no events)" % trace.tid
    t0 = trace.events[0].t
    kind = trace.commit_kind
    header = "%s (%s, origin site %s)" % (
        trace.tid,
        ("%s commit" % kind) if kind else "no commit",
        trace.origin_site,
    )
    name_width = max(len(e.name) for e in trace.events)
    lines = [header]
    for event in trace.events:
        extra = "".join(
            " %s=%s" % (k, event.extra[k]) for k in sorted(event.extra)
        )
        lines.append(
            "  +%9.3fms  %-*s site=%d%s"
            % ((event.t - t0) * 1e3, name_width, event.name, event.site, extra)
        )
    return "\n".join(lines)


def format_timelines(
    tracer: Tracer, limit: Optional[int] = None, only_committed: bool = False
) -> str:
    """Timelines for the first ``limit`` retained transactions."""
    out: List[str] = []
    for trace in tracer.traces():
        if only_committed and trace.commit_event is None:
            continue
        out.append(format_timeline(trace))
        if limit is not None and len(out) >= limit:
            break
    return "\n\n".join(out)
