"""Sim-time metrics: counters, gauges, log-scale histograms, registry.

Every metric is keyed by ``(name, labels)`` where labels always include
the owning site (``site=<int>``) for per-site breakdowns.  Timestamps and
histogram samples come from the simulation kernel (``Kernel.now``), never
from the wall clock, so a seeded run produces byte-identical snapshots --
the determinism tests depend on this.

The registry is cheap enough to leave always-on: counters and gauges are
attribute bumps, histograms a bisect into fixed buckets.  The expensive
part of observability (per-transaction span retention) lives in
:mod:`repro.obs.trace` and is opt-in.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, Any], ...]


def _label_key(name: str, labels: Dict[str, Any]) -> Tuple[str, LabelKey]:
    return name, tuple(sorted(labels.items()))


def _format_key(name: str, labels: LabelKey) -> str:
    if not labels:
        return name
    return "%s{%s}" % (name, ",".join("%s=%s" % (k, v) for k, v in labels))


class Counter:
    """A monotonically increasing count (aborts, commits, cache hits...)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def set(self, value: int) -> None:
        """Direct assignment -- used by the ``ServerStats``/``CacheStats``
        compatibility views, whose ``stats.x += 1`` idiom reads then
        writes the counter."""
        self.value = value


class Gauge:
    """A point-in-time value (replication lag, queue depth...)."""

    __slots__ = ("name", "labels", "value", "updated_at")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.updated_at: Optional[float] = None

    def set(self, value: float, at: Optional[float] = None) -> None:
        self.value = value
        self.updated_at = at


def log_buckets(
    lo: float = 1e-4, hi: float = 256.0, factor: float = 2.0
) -> Tuple[float, ...]:
    """Fixed log-scale bucket upper bounds: lo, lo*factor, ... >= hi.

    The default spans 0.1 ms .. ~4.4 min in 22 buckets -- wide enough for
    every latency in the simulation (flushes are ~1 ms, WAN visibility
    ~hundreds of ms, recovery ~seconds).
    """
    bounds: List[float] = []
    bound = lo
    while bound < hi:
        bounds.append(bound)
        bound *= factor
    bounds.append(bound)
    return tuple(bounds)


DEFAULT_BUCKETS = log_buckets()


class Histogram:
    """Fixed-bucket log-scale histogram of simulated durations (seconds).

    Buckets are upper bounds; an implicit +inf bucket catches overflow.
    Percentiles are estimated by linear interpolation inside the bucket
    containing the requested rank -- coarse, but deterministic and O(1)
    memory, which is what a long benchmark needs.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, labels: LabelKey, bounds: Tuple[float, ...] = DEFAULT_BUCKETS):
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated p-th percentile (p in [0, 100]); 0.0 when empty."""
        if self.count == 0:
            return 0.0
        rank = (p / 100.0) * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i] if i < len(self.bounds) else (self.max or lo)
                frac = (rank - cumulative) / n
                value = lo + frac * (hi - lo)
                # Clamp the estimate to the observed range so single-sample
                # histograms report the sample, not a bucket midpoint edge.
                if self.max is not None:
                    value = min(value, self.max)
                if self.min is not None:
                    value = max(value, self.min)
                return value
            cumulative += n
        return self.max or 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": round(self.sum, 9),
            "min": self.min,
            "max": self.max,
            "p50": round(self.percentile(50), 9),
            "p95": round(self.percentile(95), 9),
            "p99": round(self.percentile(99), 9),
            "p999": round(self.percentile(99.9), 9),
            "buckets": [
                (bound, n)
                for bound, n in zip(list(self.bounds) + [float("inf")], self.counts)
                if n
            ],
        }


class MetricsRegistry:
    """Get-or-create store of metrics keyed by ``(name, labels)``."""

    def __init__(self):
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        key = _label_key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter(name, key[1])
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        key = _label_key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge(name, key[1])
        return metric

    def histogram(
        self, name: str, buckets: Optional[Tuple[float, ...]] = None, **labels
    ) -> Histogram:
        key = _label_key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(
                name, key[1], bounds=buckets or DEFAULT_BUCKETS
            )
        return metric

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def total(self, name: str) -> int:
        """Sum of one counter across all label sets (e.g. the deployment
        total of a per-site counter like ``tx.reaped``)."""
        return sum(
            metric.value
            for (metric_name, _labels), metric in self._counters.items()
            if metric_name == name
        )

    def counters(self) -> List[Counter]:
        return [self._counters[k] for k in sorted(self._counters)]

    def gauges(self) -> List[Gauge]:
        return [self._gauges[k] for k in sorted(self._gauges)]

    def histograms(self) -> List[Histogram]:
        return [self._histograms[k] for k in sorted(self._histograms)]

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Deterministic (sorted-key) dump of every metric's state."""
        return {
            "counters": {
                _format_key(c.name, c.labels): c.value for c in self.counters()
            },
            "gauges": {
                _format_key(g.name, g.labels): round(g.value, 9) for g in self.gauges()
            },
            "histograms": {
                _format_key(h.name, h.labels): h.to_dict() for h in self.histograms()
            },
        }

    # ------------------------------------------------------------------
    # Cross-worker merge (parallel executor, DESIGN.md §12)
    # ------------------------------------------------------------------
    def dump_state(self) -> Dict[str, Any]:
        """Raw, picklable state -- the wire format a parallel worker ships
        to the parent at the end of a run.  Unlike :meth:`snapshot` this
        keeps labels structured and histograms as full bucket vectors, so
        :meth:`merge_states` can rebuild a registry whose ``snapshot()``
        is byte-identical to what a single-process run would produce."""
        return {
            "counters": [
                (c.name, c.labels, c.value) for c in self.counters()
            ],
            "gauges": [
                (g.name, g.labels, g.value, g.updated_at) for g in self.gauges()
            ],
            "histograms": [
                (h.name, h.labels, h.bounds, list(h.counts), h.count, h.sum, h.min, h.max)
                for h in self.histograms()
            ],
        }

    @classmethod
    def merge_states(cls, states: List[Dict[str, Any]]) -> "MetricsRegistry":
        """Rebuild one registry from per-worker :meth:`dump_state` dumps.

        Merge rules keep the result equal to a serial run's registry:
        counters and histogram buckets are additive (every increment
        happens in exactly one worker); a gauge key should be owned by
        exactly one worker (all gauges carry a ``site`` label), but if
        several workers set it the freshest ``updated_at`` wins, ties
        broken by the larger value, so the merge is order-independent.
        """
        registry = cls()
        for state in states:
            for name, labels, value in state["counters"]:
                registry.counter(name, **dict(labels)).value += value
            for name, labels, value, updated_at in state["gauges"]:
                gauge = registry.gauge(name, **dict(labels))
                incoming = (updated_at is not None, updated_at or 0.0, value)
                current = (
                    gauge.updated_at is not None,
                    gauge.updated_at or 0.0,
                    gauge.value,
                )
                if gauge.updated_at is None and gauge.value == 0.0:
                    gauge.set(value, at=updated_at)
                elif incoming > current:
                    gauge.set(value, at=updated_at)
            for name, labels, bounds, counts, count, total, mn, mx in state["histograms"]:
                hist = registry.histogram(name, buckets=bounds, **dict(labels))
                if hist.bounds != tuple(bounds):
                    raise ValueError(
                        "histogram %r bucket mismatch across workers" % (name,)
                    )
                for i, n in enumerate(counts):
                    hist.counts[i] += n
                hist.count += count
                hist.sum += total
                if mn is not None and (hist.min is None or mn < hist.min):
                    hist.min = mn
                if mx is not None and (hist.max is None or mx > hist.max):
                    hist.max = mx
        return registry
