"""Per-transaction span tracing over the simulated Walter lifecycle.

A trace is the ordered list of :class:`SpanEvent`\\ s a transaction emits
as it moves through the protocol:

``execute`` -> ``fast_commit`` | ``slow_commit.prepare`` +
``slow_commit.commit`` -> ``disklog_flush`` -> ``propagate_send`` ->
``remote_apply`` / ``remote_commit`` (per remote site) -> ``ds_durable``
-> ``globally_visible``

Events carry the site that emitted them, so lag between sites falls out
of a single trace: replication lag is ``remote_apply@s - commit@origin``,
disaster-safe-durability lag is ``ds_durable - commit``, visibility lag
is ``globally_visible - commit`` (paper Figs 18-20).

The tracer keeps at most ``capacity`` transactions in an insertion-order
ring buffer: when full, the oldest *completed* transaction's spans are
dropped (and counted), so long benchmarks retain the recent window
instead of growing without bound while a long-lived in-flight
transaction never loses spans mid-trace.  Tracing is opt-in; when
disabled the servers hold no tracer and pay only a ``None`` check per
hook.

Deep tracing (``Tracer(deep=True)``, ``Deployment(tracing="deep")``)
additionally records fine-grained commit-path milestones (the
``commit.*``, ``rpc.*``, ``wal.*``, and ``client.*`` names below) and
causal ``parent`` edges between spans, from which
:mod:`repro.obs.critical_path` computes per-transaction latency budgets.
Deep events and parent links are never emitted in default tracing mode,
so the default span stream -- pinned by the schedule-digest tests --
is byte-identical with or without this feature existing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

# Canonical event names (callers may also emit ad-hoc names).
EXECUTE = "execute"
FAST_COMMIT = "fast_commit"
SLOW_COMMIT_PREPARE = "slow_commit.prepare"
SLOW_COMMIT_COMMIT = "slow_commit.commit"
ABORT = "abort"
DISKLOG_FLUSH = "disklog_flush"
PROPAGATE_SEND = "propagate_send"
REMOTE_APPLY = "remote_apply"
REMOTE_COMMIT = "remote_commit"
DS_DURABLE = "ds_durable"
GLOBALLY_VISIBLE = "globally_visible"
#: Emitted by the chaos harness's fault injector (tid="chaos"), so
#: injected faults appear on the same timeline as transaction spans.
FAULT = "fault"

# Deep-tracing milestone names (only emitted by a Tracer(deep=True)).
#: Client issued the commit RPC (recorded by the benchmark driver).
CLIENT_COMMIT_SEND = "client.commit_send"
#: Client received the commit reply.
CLIENT_COMMIT_REPLY = "client.commit_reply"
#: The server's tx_commit handler started executing.
COMMIT_RPC_BEGIN = "commit.rpc_begin"
#: CPU admission + per-op service time paid (queueing shows up here).
COMMIT_CPU = "commit.cpu"
#: All 2PC prepare votes collected (slow commit only).
COMMIT_VOTES = "commit.votes"
#: The site-wide commit lock was acquired (lock wait ends here).
COMMIT_LOCK_ACQUIRED = "commit.lock_acquired"
#: The tx_commit handler finished (reply is about to be sent).
COMMIT_RPC_END = "commit.rpc_end"
#: An RPC request carrying span context arrived at a remote host.
RPC_RECV = "rpc.recv"
#: The WAL flushed a batch containing this transaction's commit record.
WAL_FLUSH = "wal.flush"

#: Events that mark the local commit point (start of the lag clocks).
_COMMIT_EVENTS = (FAST_COMMIT, SLOW_COMMIT_COMMIT)

#: Events after which a trace can no longer grow: the transaction either
#: aborted or completed full propagation.  Used by the ring buffer to
#: decide which traces are safe to evict.
TERMINAL_EVENTS = frozenset((GLOBALLY_VISIBLE, ABORT))


class SpanEvent:
    """One point on a transaction's timeline (simulated seconds).

    A plain slotted class, not a dataclass: one of these is allocated per
    recorded span, which makes construction cost (and per-instance dict
    overhead) the dominant term of tracing overhead.  ``slots=True``
    dataclasses would do, but the CI floor is Python 3.9.
    """

    __slots__ = ("seq", "tid", "name", "site", "t", "extra", "parent")

    def __init__(
        self,
        seq: int,
        tid: str,
        name: str,
        site: int,
        t: float,
        extra: Optional[Dict[str, Any]] = None,
        #: Causal edge: the ``seq`` of the span event that caused this
        #: one (across RPC hops and propagation).  Only set in deep
        #: tracing mode; serialized only when present, so default-mode
        #: JSONL is unchanged.
        parent: Optional[int] = None,
    ):
        self.seq = seq
        self.tid = tid
        self.name = name
        self.site = site
        self.t = t
        self.extra = {} if extra is None else extra
        self.parent = parent

    def __repr__(self) -> str:
        return (
            "SpanEvent(seq=%r, tid=%r, name=%r, site=%r, t=%r, extra=%r, parent=%r)"
            % (self.seq, self.tid, self.name, self.site, self.t, self.extra, self.parent)
        )

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, SpanEvent):
            return NotImplemented
        return (
            self.seq == other.seq
            and self.tid == other.tid
            and self.name == other.name
            and self.site == other.site
            and self.t == other.t
            and self.extra == other.extra
            and self.parent == other.parent
        )

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "seq": self.seq,
            "tid": self.tid,
            "event": self.name,
            "site": self.site,
            "t": round(self.t, 9),
        }
        if self.parent is not None:
            out["parent"] = self.parent
        for k in sorted(self.extra):
            out[k] = self.extra[k]
        return out


@dataclass
class TxTrace:
    """All spans recorded for one transaction."""

    tid: str
    events: List[SpanEvent] = field(default_factory=list)
    #: A terminal event (globally visible / abort) was recorded, or the
    #: owner called :meth:`Tracer.finish`; completed traces are the only
    #: ones the ring buffer may evict.
    completed: bool = False
    #: Per-name index of the most recent event's ``seq``, maintained by
    #: :meth:`Tracer.record` so the deep-tracing parent-edge lookup
    #: (:meth:`Tracer.last_seq`) is a dict get instead of a reversed
    #: scan of the event list -- that scan ran once per deep RPC edge
    #: and dominated deep-tracing overhead on commit-heavy workloads.
    last_seq_by_name: Dict[str, int] = field(default_factory=dict)

    def first(self, name: str, site: Optional[int] = None) -> Optional[SpanEvent]:
        for event in self.events:
            if event.name == name and (site is None or event.site == site):
                return event
        return None

    def has(self, name: str, site: Optional[int] = None) -> bool:
        return self.first(name, site) is not None

    # ------------------------------------------------------------------
    # Derived timeline facts
    # ------------------------------------------------------------------
    @property
    def origin_site(self) -> Optional[int]:
        for name in (EXECUTE,) + _COMMIT_EVENTS:
            event = self.first(name)
            if event is not None:
                return event.site
        return self.events[0].site if self.events else None

    @property
    def commit_event(self) -> Optional[SpanEvent]:
        for event in self.events:
            if event.name in _COMMIT_EVENTS:
                return event
        return None

    @property
    def commit_kind(self) -> Optional[str]:
        event = self.commit_event
        if event is None:
            return None
        return "fast" if event.name == FAST_COMMIT else "slow"

    def _lag_from_commit(self, name: str, site: Optional[int] = None) -> Optional[float]:
        commit = self.commit_event
        if commit is None:
            return None
        event = self.first(name, site)
        if event is None:
            return None
        return event.t - commit.t

    def ds_lag(self) -> Optional[float]:
        """Commit -> disaster-safe durable at the origin (Fig 19)."""
        return self._lag_from_commit(DS_DURABLE)

    def visibility_lag(self) -> Optional[float]:
        """Commit -> globally visible (every site committed it)."""
        return self._lag_from_commit(GLOBALLY_VISIBLE)

    def replication_lag(self, site: int) -> Optional[float]:
        """Commit at origin -> updates applied at ``site``."""
        return self._lag_from_commit(REMOTE_APPLY, site)


class Tracer:
    """Bounded collector of transaction traces.

    Timestamps are supplied by callers (``kernel.now``) so the tracer has
    no clock of its own -- nothing here can leak wall-clock time into a
    deterministic run.
    """

    def __init__(self, capacity: int = 8192, deep: bool = False):
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        #: Deep tracing: fine-grained commit milestones + parent edges.
        self.deep = deep
        # Plain dict: insertion-ordered since 3.7, and both the per-event
        # get() and the eviction scan are cheaper than OrderedDict's.
        self._traces: Dict[str, TxTrace] = {}
        #: Tids in completion order, awaiting possible eviction.  Keeping
        #: this queue makes eviction O(1) amortized; scanning ``_traces``
        #: from the front instead (the previous implementation) walked
        #: past every still-open trace on each eviction, which dominated
        #: tracing overhead once a long benchmark filled the buffer.
        self._completed_fifo: deque = deque()
        self._seq = 0
        self.events_recorded = 0
        self.traces_dropped = 0
        self._subscribers: List[Callable[[SpanEvent], None]] = []

    def __len__(self) -> int:
        return len(self._traces)

    def subscribe(self, callback: Callable[[SpanEvent], None]) -> None:
        """Invoke ``callback(event)`` for every span recorded from now on
        (the online invariant monitor's feed).  Callbacks must not record
        spans themselves."""
        self._subscribers.append(callback)

    def record(
        self,
        tid: str,
        name: str,
        site: int,
        t: float,
        parent: Optional[int] = None,
        **extra,
    ) -> SpanEvent:
        trace = self._traces.get(tid)
        if trace is None:
            trace = self._traces[tid] = TxTrace(tid)
            if len(self._traces) > self.capacity:
                self._evict_completed()
        seq = self._seq + 1
        self._seq = seq
        # ``extra`` is already a fresh dict built from the call's keyword
        # arguments; hand it over without copying.
        event = SpanEvent(seq, tid, name, site, t, extra, parent)
        trace.events.append(event)
        trace.last_seq_by_name[name] = seq
        self.events_recorded += 1
        if name in TERMINAL_EVENTS and not trace.completed:
            trace.completed = True
            self._completed_fifo.append(tid)
        if self._subscribers:
            for callback in self._subscribers:
                callback(event)
        return event

    def _evict_completed(self) -> None:
        """Drop the earliest-*completed* traces until back within
        capacity.  Open (in-flight) traces are never evicted -- a
        transaction that outlives the buffer window keeps its whole
        timeline -- so the buffer may transiently exceed capacity by the
        number of open traces."""
        fifo = self._completed_fifo
        while len(self._traces) > self.capacity and fifo:
            del self._traces[fifo.popleft()]
            self.traces_dropped += 1

    def finish(self, tid: str) -> None:
        """Mark a trace completed (evictable) for lifecycles with no
        terminal span in the stream: read-only commits, client aborts
        delivered as plain RPCs, lease reaps."""
        trace = self._traces.get(tid)
        if trace is not None and not trace.completed:
            trace.completed = True
            self._completed_fifo.append(tid)

    def last_seq(self, tid: str, name: str) -> Optional[int]:
        """``seq`` of the most recent ``name`` event of ``tid`` (used to
        attach causal parent edges in deep mode)."""
        trace = self._traces.get(tid)
        if trace is None:
            return None
        return trace.last_seq_by_name.get(name)

    def get(self, tid: str) -> Optional[TxTrace]:
        return self._traces.get(tid)

    def traces(self) -> List[TxTrace]:
        """Retained traces in first-event order."""
        return list(self._traces.values())

    def events(self) -> Iterator[SpanEvent]:
        """Every retained event in global emission order."""
        all_events = [e for trace in self._traces.values() for e in trace.events]
        all_events.sort(key=lambda e: e.seq)
        return iter(all_events)

    def clear(self) -> None:
        self._traces.clear()
        self._completed_fifo.clear()
