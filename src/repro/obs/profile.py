"""Per-site access profiling: hot keys and per-container traffic.

ROADMAP item 5 (workload-adaptive preferred-site placement) needs to
know, per site, which objects are hot, who writes them, and where the
conflicts are.  This module provides that telemetry:

* :class:`SpaceSaving` -- the deterministic space-saving heavy-hitters
  sketch (Metwally et al.): bounded memory, every key with frequency
  above ``1/capacity`` of the stream is guaranteed present, and each
  entry carries an overestimation ``error`` bound.  Eviction picks the
  minimum ``(count, insertion_seq)`` entry, so two same-seed runs evict
  identically.
* :class:`AccessProfiler` -- one per server: a hot-key sketch over
  object ids plus exact per-container counters (reads, writes,
  conflicts, remote applies, owner vs non-owner traffic).  Exported by
  ``Deployment.metrics_snapshot()`` under ``"access_profile"``.

Everything here is plain dict arithmetic driven by protocol hooks; the
profiler never touches the kernel, so it cannot perturb schedules.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional


class SpaceSaving:
    """Deterministic space-saving sketch with per-entry payload counters.

    ``observe(key, field)`` counts one occurrence of ``key`` and bumps
    the named payload counter on its entry.  When the sketch is full, a
    new key replaces the current minimum-count entry (ties broken by
    insertion order) and inherits its count as the overestimation
    ``error`` -- the classic space-saving guarantee.  Payload counters
    restart with the new key (they describe the entry's residency, not
    the evicted key's history).
    """

    __slots__ = ("capacity", "_entries", "_heap", "_seq", "evictions", "observations")

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("sketch capacity must be >= 1")
        self.capacity = capacity
        # key -> [count, error, insertion_seq, payload_dict]
        self._entries: Dict[Any, list] = {}
        # Lazy min-heap of (count_at_push, insertion_seq, key); every
        # live key has exactly one heap entry whose pushed count is a
        # lower bound on its current count.
        self._heap: List[tuple] = []
        self._seq = 0
        self.evictions = 0
        self.observations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def observe(self, key, field: Optional[str] = None, owner: Optional[bool] = None) -> None:
        self.observations += 1
        entry = self._entries.get(key)
        if entry is None:
            self._seq += 1
            if len(self._entries) >= self.capacity:
                base = self._evict_min()
                entry = [base + 1, base, self._seq, {}]
            else:
                entry = [1, 0, self._seq, {}]
            self._entries[key] = entry
            heapq.heappush(self._heap, (entry[0], entry[2], key))
        else:
            entry[0] += 1
        payload = entry[3]
        if field is not None:
            payload[field] = payload.get(field, 0) + 1
        if owner is not None:
            okey = "owner_ops" if owner else "nonowner_ops"
            payload[okey] = payload.get(okey, 0) + 1

    def _evict_min(self) -> int:
        """Remove and return the count of the minimum ``(count, seq)``
        entry, lazily refreshing stale heap entries on the way down."""
        heap = self._heap
        entries = self._entries
        while True:
            count, seq, key = heapq.heappop(heap)
            entry = entries.get(key)
            if entry is None:
                continue  # key already evicted under a fresher heap entry
            if entry[0] != count or entry[2] != seq:
                # Stale (count grew since the push): re-push current.
                heapq.heappush(heap, (entry[0], entry[2], key))
                continue
            del entries[key]
            self.evictions += 1
            return count

    def get(self, key) -> Optional[Dict[str, Any]]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        return self._entry_dict(key, entry)

    @staticmethod
    def _entry_dict(key, entry) -> Dict[str, Any]:
        out = {"key": str(key), "count": entry[0], "error": entry[1]}
        for field in sorted(entry[3]):
            out[field] = entry[3][field]
        return out

    def top(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """Entries by descending count (ties by key string): the
        heavy-hitter report."""
        ranked = sorted(
            self._entries.items(), key=lambda kv: (-kv[1][0], str(kv[0]))
        )
        if n is not None:
            ranked = ranked[:n]
        return [self._entry_dict(key, entry) for key, entry in ranked]


#: Exact per-container counter names, in report order.
CONTAINER_FIELDS = (
    "reads",
    "writes",
    "conflicts",
    "remote_applies",
    "owner_ops",
    "nonowner_ops",
)


class AccessProfiler:
    """Per-site access statistics: a hot-key sketch plus exact
    per-container counters.  One per :class:`~repro.server.WalterServer`;
    fed by the read, commit, conflict, and propagation-apply paths."""

    __slots__ = ("site", "hot", "containers")

    def __init__(self, site: int, capacity: int = 64):
        self.site = site
        self.hot = SpaceSaving(capacity)
        self.containers: Dict[str, Dict[str, int]] = {}

    def _container(self, cid: str) -> Dict[str, int]:
        stats = self.containers.get(cid)
        if stats is None:
            stats = self.containers[cid] = dict.fromkeys(CONTAINER_FIELDS, 0)
        return stats

    def record_read(self, oid, owner: bool) -> None:
        self.hot.observe(oid, "reads", owner=owner)
        stats = self._container(oid.container)
        stats["reads"] += 1
        stats["owner_ops" if owner else "nonowner_ops"] += 1

    def record_write(self, oid, owner: bool) -> None:
        self.hot.observe(oid, "writes", owner=owner)
        stats = self._container(oid.container)
        stats["writes"] += 1
        stats["owner_ops" if owner else "nonowner_ops"] += 1

    def record_conflict(self, oid) -> None:
        """A commit (fast conflict check or 2PC prepare) was refused
        because of this object."""
        self.hot.observe(oid, "conflicts")
        self._container(oid.container)["conflicts"] += 1

    def record_remote_apply(self, oid) -> None:
        """A propagated remote update touched this object here."""
        self.hot.observe(oid, "remote_applies")
        self._container(oid.container)["remote_applies"] += 1

    def as_dict(self, top: int = 10) -> Dict[str, Any]:
        """Deterministic snapshot for ``metrics_snapshot()``."""
        return {
            "site": self.site,
            "observations": self.hot.observations,
            "tracked_keys": len(self.hot),
            "evictions": self.hot.evictions,
            "hot_keys": self.hot.top(top),
            "containers": {
                cid: dict(stats) for cid, stats in sorted(self.containers.items())
            },
        }
