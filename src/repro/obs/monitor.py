"""Online invariant monitor: streaming sim-time checks over a running
deployment.

The post-hoc chaos oracles judge a run after it settles; this monitor
watches the same invariants *during* the run and raises structured
:class:`Alert`\\ s the moment a breach persists past its grace period:

* **watermark_regression** -- a site's ``CommittedVTS`` went backwards
  (it is append-only except across server replacement, where the
  baseline legitimately resets);
* **got_behind_committed** -- ``CommittedVTS`` overtook ``GotVTS``
  somewhere: the site claims to have committed an update it never
  received (the Fig 13 committed guard forbids this);
* **propagation_gap** -- a receiver has parked records from some origin
  whose head seqno leaves a hole above ``GotVTS`` that is not filling:
  the missing seqnos were lost and nobody is retransmitting them;
* **lock_hold** -- an object lock (2PC prepare) held continuously past
  the SLO: an orphaned lock the sweeper should have resolved;
* **replication_stall** -- a receiver's ``GotVTS`` entry for some origin
  sits strictly behind that origin's committed frontier and has stopped
  advancing: propagation to that site is stuck.

The monitor is **passive**: it never creates kernel events, so a
monitored run has the byte-identical schedule of an unmonitored one.  It
piggybacks on span tracing -- every recorded span gives it a chance to
run its checks, throttled to once per ``check_interval`` of simulated
time -- and the harness calls :meth:`finalize` once the run settles.

Alerts auto-resolve when their condition clears (a partition heals, a
lock is released, a stall drains), so transient SLO breaches during
injected faults do not count against a run; a *clean* run judged at the
end has no **active** alerts, while a run with a planted bug (leaked
locks, never-resumed propagation) ends with the breach still active.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class Alert:
    """One invariant breach, raised at sim time ``raised_at`` and
    resolved (condition cleared) at ``resolved_at`` -- or still active
    when ``resolved_at`` is None."""

    kind: str
    site: int
    key: str
    raised_at: float
    resolved_at: Optional[float] = None
    details: Dict[str, Any] = field(default_factory=dict)

    @property
    def active(self) -> bool:
        return self.resolved_at is None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "site": self.site,
            "key": self.key,
            "raised_at": round(self.raised_at, 9),
            "resolved_at": (
                None if self.resolved_at is None else round(self.resolved_at, 9)
            ),
            "details": {k: self.details[k] for k in sorted(self.details)},
        }


class OnlineMonitor:
    """Streaming invariant checker over a :class:`~repro.deployment.Deployment`.

    Construct it after the deployment (``OnlineMonitor(world)``); when
    span tracing is on it subscribes itself to the tracer and runs
    automatically.  Without tracing, call :meth:`check` at points of
    interest.  Either way, call :meth:`finalize` after the run settles
    so end-of-run breaches are evaluated one last time.
    """

    def __init__(
        self,
        world,
        check_interval: float = 0.25,
        lock_slo: float = 6.0,
        stall_grace: float = 2.0,
        gap_grace: float = 1.0,
    ):
        self.world = world
        self.check_interval = check_interval
        self.lock_slo = lock_slo
        self.stall_grace = stall_grace
        self.gap_grace = gap_grace
        #: Every alert ever raised, in raise order.
        self.alerts: List[Alert] = []
        self.checks_run = 0
        self._active: Dict[Tuple[str, int, str], Alert] = {}
        self._last_check = float("-inf")
        # Baselines, reset when a site's server object is replaced.
        self._server_ids: Dict[int, int] = {}
        self._vts_max: Dict[int, List[int]] = {}
        self._lock_seen: Dict[Tuple[int, str], Tuple[str, float]] = {}
        self._stall_seen: Dict[Tuple[int, int], Tuple[int, float]] = {}
        self._gap_seen: Dict[Tuple[int, int], Tuple[int, int, float]] = {}
        tracer = world.obs.tracer
        if tracer is not None:
            tracer.subscribe(self._on_span)

    # ------------------------------------------------------------------
    # Feed
    # ------------------------------------------------------------------
    def _on_span(self, _event) -> None:
        now = self.world.kernel.now
        if now - self._last_check >= self.check_interval:
            self.check(now)

    def check(self, now: Optional[float] = None) -> None:
        """Run all invariant checks against the current world state."""
        if now is None:
            now = self.world.kernel.now
        self._last_check = now
        self.checks_run += 1
        for site, server in enumerate(self.world.servers):
            if self._server_ids.get(site) != id(server):
                self._reset_site(site, server, now)
            self._check_watermarks(site, server, now)
            self._check_locks(site, server, now)
            self._check_gaps(site, server, now)
        self._check_stalls(now)

    def finalize(self, now: Optional[float] = None) -> None:
        """One last evaluation after the run settled; end-of-run breaches
        stay active, everything that healed is resolved."""
        self.check(now)

    # ------------------------------------------------------------------
    # Alert bookkeeping
    # ------------------------------------------------------------------
    def _raise(self, kind: str, site: int, key: str, now: float, **details) -> None:
        akey = (kind, site, key)
        alert = self._active.get(akey)
        if alert is not None:
            alert.details.update(details)
            return
        alert = Alert(kind=kind, site=site, key=key, raised_at=now, details=details)
        self._active[akey] = alert
        self.alerts.append(alert)

    def _resolve(self, kind: str, site: int, key: str, now: float) -> None:
        alert = self._active.pop((kind, site, key), None)
        if alert is not None:
            alert.resolved_at = now

    def active_alerts(self) -> List[Alert]:
        return sorted(
            self._active.values(), key=lambda a: (a.kind, a.site, a.key)
        )

    def summary(self) -> Dict[str, Any]:
        by_kind: Dict[str, int] = {}
        for alert in self.alerts:
            by_kind[alert.kind] = by_kind.get(alert.kind, 0) + 1
        return {
            "raised": len(self.alerts),
            "active": len(self._active),
            "checks_run": self.checks_run,
            "by_kind": dict(sorted(by_kind.items())),
        }

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def _reset_site(self, site: int, server, now: float) -> None:
        """A replacement server took over this site: its in-memory clocks
        legitimately restart from recovered state, so baselines reset and
        watermark alerts against the dead server resolve."""
        self._server_ids[site] = id(server)
        self._vts_max[site] = list(server.committed_vts)
        self._resolve("watermark_regression", site, "committed_vts", now)
        self._resolve("got_behind_committed", site, "got_vts", now)
        for lkey in [k for k in self._lock_seen if k[0] == site]:
            del self._lock_seen[lkey]
            self._resolve("lock_hold", site, lkey[1], now)

    def _check_watermarks(self, site: int, server, now: float) -> None:
        current = list(server.committed_vts)
        seen = self._vts_max[site]
        if any(c < m for c, m in zip(current, seen)):
            self._raise(
                "watermark_regression", site, "committed_vts", now,
                committed=current, max_seen=list(seen),
            )
        else:
            self._resolve("watermark_regression", site, "committed_vts", now)
        self._vts_max[site] = [max(c, m) for c, m in zip(current, seen)]
        got = list(server.got_vts)
        if any(g < c for g, c in zip(got, current)):
            self._raise(
                "got_behind_committed", site, "got_vts", now,
                got=got, committed=current,
            )
        else:
            self._resolve("got_behind_committed", site, "got_vts", now)

    def _check_locks(self, site: int, server, now: float) -> None:
        held = {(site, str(oid)): tid for oid, tid in server.locked.items()}
        for lkey in [k for k in self._lock_seen if k[0] == site]:
            if lkey not in held:
                del self._lock_seen[lkey]
                self._resolve("lock_hold", site, lkey[1], now)
        for lkey, tid in sorted(held.items()):
            seen = self._lock_seen.get(lkey)
            if seen is None or seen[0] != tid:
                self._lock_seen[lkey] = (tid, now)
                if seen is not None:
                    self._resolve("lock_hold", site, lkey[1], now)
                continue
            duration = now - seen[1]
            if duration >= self.lock_slo:
                self._raise(
                    "lock_hold", site, lkey[1], now,
                    holder=tid, held_for=round(duration, 9),
                )

    def _check_gaps(self, site: int, server, now: float) -> None:
        pending = server._pending_remote
        heads: Dict[int, int] = {}
        for origin in pending.sites():
            head = pending.parked_head(origin)
            if head is None:
                continue
            got = server.got_vts[origin]
            if head > got + 1:
                heads[origin] = head
                gkey = (site, origin)
                seen = self._gap_seen.get(gkey)
                if seen is None or seen[0] != head or seen[1] != got:
                    self._gap_seen[gkey] = (head, got, now)
                    continue
                if now - seen[2] >= self.gap_grace:
                    self._raise(
                        "propagation_gap", site, "origin=%d" % origin, now,
                        parked_head=head, got=got,
                        missing=head - got - 1,
                    )
        for gkey in [k for k in self._gap_seen if k[0] == site]:
            if gkey[1] not in heads:
                del self._gap_seen[gkey]
                self._resolve(
                    "propagation_gap", site, "origin=%d" % gkey[1], now
                )

    def _check_stalls(self, now: float) -> None:
        servers = self.world.servers
        for origin, origin_server in enumerate(servers):
            frontier = origin_server.committed_vts[origin]
            for receiver, recv_server in enumerate(servers):
                if receiver == origin:
                    continue
                got = recv_server.got_vts[origin]
                skey = (origin, receiver)
                if got >= frontier:
                    self._stall_seen.pop(skey, None)
                    self._resolve(
                        "replication_stall", receiver, "origin=%d" % origin, now
                    )
                    continue
                seen = self._stall_seen.get(skey)
                if seen is None or seen[0] != got:
                    # First sighting, or progress since: restart the clock.
                    self._stall_seen[skey] = (got, now)
                    continue
                if now - seen[1] >= self.stall_grace:
                    self._raise(
                        "replication_stall", receiver, "origin=%d" % origin, now,
                        got=got, frontier=frontier, behind=frontier - got,
                    )
