"""Microbenchmark workloads (paper §8.1-§8.5).

"Our microbenchmark workload consists of transactions that read or write
a few randomly chosen 100-byte objects."  Objects live in per-site
containers so their preferred sites are spread evenly across sites
(§8.3); clients pick keys uniformly at random.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from ..client import WalterClient
from ..core.objects import ObjectId, ObjectKind
from ..deployment import Deployment

OBJECT_SIZE = 100  # bytes, §8.1
PAYLOAD = b"x" * OBJECT_SIZE


@dataclass
class KeySpace:
    """The benchmark's populated keys, split by preferred site."""

    oids: List[ObjectId]
    by_site: Dict[int, List[ObjectId]]
    csets_by_site: Dict[int, List[ObjectId]]


def populate(
    world: Deployment,
    n_keys: int = 5000,
    n_csets_per_site: int = 0,
    payload: bytes = PAYLOAD,
) -> KeySpace:
    """Create per-site containers, mint keys round-robin across sites, and
    preload them (the paper populates 50,000 keys; the simulation's cache
    has no capacity cliff so a smaller population is equivalent)."""
    containers = {}
    for site in range(world.n_sites):
        containers[site] = world.create_container(
            "bench-site%d" % site, preferred_site=site
        )
    oids: List[ObjectId] = []
    by_site: Dict[int, List[ObjectId]] = {s: [] for s in range(world.n_sites)}
    for i in range(n_keys):
        site = i % world.n_sites
        oid = containers[site].new_id()
        oids.append(oid)
        by_site[site].append(oid)
    world.preload({oid: payload for oid in oids})
    csets_by_site: Dict[int, List[ObjectId]] = {s: [] for s in range(world.n_sites)}
    for site in range(world.n_sites):
        for _ in range(n_csets_per_site):
            csets_by_site[site].append(containers[site].new_id(ObjectKind.CSET))
    return KeySpace(oids, by_site, csets_by_site)


# ----------------------------------------------------------------------
# Operation factories for the closed-loop harness
# ----------------------------------------------------------------------
def read_tx_factory(keys: KeySpace, size: int = 1):
    """Read-only transactions of ``size`` objects; commit piggybacked on
    the last read (single-object transactions cost one RPC, §8.2)."""

    def factory(client: WalterClient, rng: random.Random):
        def op():
            tx = client.start_tx()
            for i in range(size):
                oid = rng.choice(keys.oids)
                yield from client.read(tx, oid, last=(i == size - 1))
            return "read-%d" % size

        return op

    return factory


def write_tx_factory(keys: KeySpace, size: int = 1, local_preferred: bool = True):
    """Write-only transactions of ``size`` objects.

    ``local_preferred=True`` picks objects whose preferred site is the
    client's site (the fast-commit workload of §8.3); ``False`` picks
    uniformly, producing a fast/slow commit mix.
    """

    def factory(client: WalterClient, rng: random.Random):
        site = client.site.id
        pool_of = keys.by_site

        def op():
            tx = client.start_tx()
            pool = pool_of[site] if local_preferred else keys.oids
            for i in range(size):
                oid = rng.choice(pool)
                yield from client.write(tx, oid, PAYLOAD, last=(i == size - 1))
            if tx.status != "COMMITTED":
                raise RuntimeError("write tx aborted")
            return "write-%d" % size

        return op

    return factory


def mixed_tx_factory(keys: KeySpace, read_size: int, write_size: int, read_frac: float = 0.9):
    """The §8.3 mixed workload: ``read_frac`` read-only transactions, the
    rest write-only."""

    read_factory = read_tx_factory(keys, read_size)
    write_factory = write_tx_factory(keys, write_size)

    def factory(client: WalterClient, rng: random.Random):
        read_op_maker = read_factory(client, rng)
        write_op_maker = write_factory(client, rng)

        def op():
            if rng.random() < read_frac:
                result = yield from read_op_maker()
            else:
                result = yield from write_op_maker()
            return result

        return op

    return factory


def cset_tx_factory(keys: KeySpace):
    """The §8.4 workload: each transaction modifies two 100-byte objects
    at the local preferred site and adds an id to a cset whose preferred
    site is remote; explicit commit (4 RPCs total)."""

    def factory(client: WalterClient, rng: random.Random):
        site = client.site.id

        def op():
            tx = client.start_tx()
            for _ in range(2):
                oid = rng.choice(keys.by_site[site])
                yield from client.write(tx, oid, PAYLOAD)
            remote_sites = [s for s in keys.csets_by_site if s != site and keys.csets_by_site[s]]
            cset = rng.choice(keys.csets_by_site[rng.choice(remote_sites)])
            yield from client.set_add(tx, cset, rng.randrange(1_000_000))
            status = yield from client.commit(tx)
            if status != "COMMITTED":
                raise RuntimeError("cset tx aborted")
            return "cset"

        return op

    return factory


def slow_commit_tx_factory(keys: KeySpace, tx_size: int):
    """The §8.5 workload: write-only transactions of 2-4 objects, each
    object with a *different* preferred site (VA, CA, IE, SG in order),
    issued at the VA site -- forcing slow commit."""

    def factory(client: WalterClient, rng: random.Random):
        def op():
            tx = client.start_tx()
            for site in range(tx_size):
                oid = rng.choice(keys.by_site[site])
                yield from client.write(tx, oid, PAYLOAD)
            status = yield from client.commit(tx)
            if status != "COMMITTED":
                raise RuntimeError("slow tx aborted")
            return "slow-%d" % tx_size

        return op

    return factory


# ----------------------------------------------------------------------
# Scenario drivers (module-level, importable by parallel workers)
# ----------------------------------------------------------------------
def mixed_rw_scenario(
    world: Deployment,
    n_keys: int = 120,
    clients_per_site: int = 3,
    warmup: float = 0.05,
    measure: float = 0.3,
    seed: int = 99,
    settle: float = 1.0,
    remote_write_frac: float = 0.4,
):
    """The schedule-digest workload as a self-contained scenario driver:
    read-modify-write transactions with an occasional remote write, then
    a settle window for propagation.

    This is the dual-executor gate's reference workload.  It is a
    module-level function so the parallel executor's spawn workers can
    import it by name, and it drives the world only through
    cluster-deterministic APIs (``populate``/``run_closed_loop``/
    ``settle``), so a serial run and any worker partitioning execute the
    identical schedule.
    """
    from .harness import run_closed_loop

    keys = populate(world, n_keys=n_keys)
    n_sites = world.n_sites

    def factory(client: WalterClient, rng: random.Random):
        site = client.site.id

        def op():
            tx = client.start_tx()
            oid = rng.choice(keys.by_site[site])
            yield from client.read(tx, oid)
            if rng.random() < remote_write_frac:
                remote = keys.by_site[(site + 1) % n_sites]
                yield from client.write(tx, rng.choice(remote), PAYLOAD)
            yield from client.write(tx, oid, PAYLOAD)
            status = yield from client.commit(tx)
            return status

        return op

    result = run_closed_loop(
        world, factory, clients_per_site=clients_per_site,
        warmup=warmup, measure=measure, name="digest", seed=seed,
    )
    world.settle(settle)
    return {"ops": result.ops, "errors": result.errors}


def eight_site_write_scenario(
    world: Deployment,
    n_keys: int = 2000,
    clients_per_site: int = 12,
    warmup: float = 0.6,
    measure: float = 0.8,
):
    """The ``eight_site_scaling`` wall-clock workload: write-only
    single-object transactions against local preferred sites.  Shared by
    the serial scenario and its parallel twin so both executors run the
    identical simulated schedule (same populate, same factories, same
    closed-loop parameters)."""
    from .harness import run_closed_loop

    keys = populate(world, n_keys=n_keys)
    factory = write_tx_factory(keys, 1)
    result = run_closed_loop(
        world, factory, clients_per_site=clients_per_site,
        warmup=warmup, measure=measure, name="8site-write",
    )
    return {"ops": result.ops, "errors": result.errors, "now": round(world.kernel.now, 9)}


def fig17_mixed_scenario(
    world: Deployment,
    n_keys: int = 4000,
    clients_per_site: int = 16,
    warmup: float = 0.1,
    measure: float = 0.2,
    settle: float = 0.5,
):
    """The Fig 17 mixed cell (90% size-1 reads, 10% size-5 writes) as a
    dual-executor gate scenario."""
    from .harness import run_closed_loop

    keys = populate(world, n_keys=n_keys)
    factory = mixed_tx_factory(keys, 1, 5)
    result = run_closed_loop(
        world, factory, clients_per_site=clients_per_site,
        warmup=warmup, measure=measure, name="fig17-mixed",
    )
    world.settle(settle)
    return {"ops": result.ops, "errors": result.errors, "now": round(world.kernel.now, 9)}


def fig18_write5_scenario(
    world: Deployment,
    n_keys: int = 1000,
    clients_per_site: int = 8,
    warmup: float = 0.1,
    measure: float = 0.2,
    settle: float = 0.5,
):
    """The Fig 18 fast-commit latency workload shape (write-only
    transactions of 5 local objects) as a dual-executor gate scenario."""
    from .harness import run_closed_loop

    keys = populate(world, n_keys=n_keys)
    factory = write_tx_factory(keys, 5)
    result = run_closed_loop(
        world, factory, clients_per_site=clients_per_site,
        warmup=warmup, measure=measure, name="fig18-write5",
    )
    world.settle(settle)
    return {"ops": result.ops, "errors": result.errors, "now": round(world.kernel.now, 9)}
