"""Closed-loop benchmark driver.

Mirrors the paper's methodology (§8.1): multiple clients per site issue
operations back-to-back against their local server; the harness discards
a warmup window and reports throughput and latency over the measurement
window in *simulated* time.  Optionally the client count is swept to find
the saturation throughput, or fixed to hit a target load fraction
("moderate load ... 70% of maximal throughput", §8.3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from ..deployment import Deployment
from ..sim import Interrupt
from .metrics import BenchResult, LatencyRecorder

#: An operation factory: (client, rng) -> zero-arg generator-function
#: performing one operation and returning an optional label.
OpFactory = Callable


def run_closed_loop_raw(
    kernel,
    clients: Sequence,
    op_factory: OpFactory,
    warmup: float = 0.2,
    measure: float = 0.5,
    name: str = "bench",
    seed: int = 1234,
    obs=None,
    runner=None,
) -> BenchResult:
    """Generic closed-loop driver over pre-built clients (used directly by
    the baseline benchmarks; Walter benchmarks use :func:`run_closed_loop`).

    ``obs`` (a :class:`repro.obs.Observability`) adds a metric snapshot to
    the result, taken right after the measurement window closes.

    ``runner`` overrides how simulated time advances: a callable taking
    the absolute target time.  The parallel executor passes the
    deployment's barrier loop here; the default drives ``kernel`` alone.
    ``clients`` may contain ``None`` entries (cluster mode: a client
    whose site another worker owns) -- they hold their global index, so
    per-client seeds line up across workers, but drive no load locally."""
    recorder = LatencyRecorder(name)
    by_label = {}
    state = {"ops": 0, "errors": 0, "measuring": False}

    def worker(client, rng):
        op = op_factory(client, rng)
        try:
            while True:
                start = kernel.now
                try:
                    label = yield from op()
                except Interrupt:
                    raise
                except Exception:
                    if state["measuring"]:
                        state["errors"] += 1
                    continue
                if state["measuring"]:
                    latency = kernel.now - start
                    state["ops"] += 1
                    recorder.record(latency)
                    if label:
                        by_label.setdefault(label, LatencyRecorder(label)).record(latency)
        except Interrupt:
            return

    run_until = runner or (lambda t: kernel.run(until=t))
    workers = []
    for i, client in enumerate(clients):
        if client is None:
            continue
        rng = random.Random(seed * 97 + i)
        workers.append(kernel.spawn(worker(client, rng), name="worker-%d" % i))

    run_until(kernel.now + warmup)
    state["measuring"] = True
    measure_start = kernel.now
    run_until(measure_start + measure)
    state["measuring"] = False
    duration = kernel.now - measure_start
    for proc in workers:
        proc.interrupt("bench done")
    run_until(kernel.now + 0.001)

    return BenchResult(
        name=name,
        ops=state["ops"],
        errors=state["errors"],
        duration=duration,
        latencies=recorder,
        by_label=by_label,
        metrics=obs.snapshot() if obs is not None else None,
    )


def run_closed_loop(
    world: Deployment,
    op_factory: OpFactory,
    sites: Optional[Sequence[int]] = None,
    clients_per_site: int = 16,
    warmup: float = 0.2,
    measure: float = 0.5,
    name: str = "bench",
    seed: int = 1234,
) -> BenchResult:
    """Drive closed-loop Walter clients and measure the steady window."""
    sites = list(sites if sites is not None else range(world.n_sites))
    clients = [
        world.new_client(site) for site in sites for _ in range(clients_per_site)
    ]
    return run_closed_loop_raw(
        world.kernel, clients, op_factory,
        warmup=warmup, measure=measure, name=name, seed=seed,
        obs=getattr(world, "obs", None),
        # world.run == kernel.run outside cluster mode; in cluster mode it
        # is the parallel executor's barrier loop.
        runner=lambda t: world.run(until=t),
    )


def find_saturation(
    make_world: Callable[[], Deployment],
    op_factory: OpFactory,
    clients_grid: Iterable[int] = (4, 8, 16, 32, 64),
    **kwargs,
) -> BenchResult:
    """Sweep client counts; return the configuration with peak throughput.

    Each grid point gets a fresh world so measurements are independent.
    """
    best: Optional[BenchResult] = None
    for n in clients_grid:
        world = make_world()
        result = run_closed_loop(world, op_factory, clients_per_site=n, **kwargs)
        result.name = "%s@%d-clients" % (result.name, n)
        if best is None or result.throughput > best.throughput:
            best = result
    assert best is not None
    return best


def run_at_fraction_of_max(
    make_world: Callable[[], Deployment],
    op_factory: OpFactory,
    fraction: float = 0.7,
    saturation_clients: int = 48,
    probe_clients: int = 2,
    **kwargs,
) -> BenchResult:
    """Measure latency at a moderate load -- the paper's methodology for
    Fig 18/22 ("clients issued enough requests to achieve 70% of maximal
    throughput", §8.3).

    Runs a saturation pass and a light probe pass (each on a fresh
    world) to estimate per-client throughput, then sizes the client pool
    to hit ``fraction`` of the saturation throughput.
    """
    peak = run_closed_loop(
        make_world(), op_factory, clients_per_site=saturation_clients,
        name="saturation", **kwargs
    )
    probe = run_closed_loop(
        make_world(), op_factory, clients_per_site=probe_clients,
        name="probe", **kwargs
    )
    n_sites = _n_sites(kwargs, make_world)
    per_client_site = probe.throughput / max(1, probe_clients * n_sites)
    target = peak.throughput * fraction
    n_clients = max(1, round(target / max(per_client_site, 1e-9) / n_sites))
    n_clients = min(n_clients, saturation_clients)
    return run_closed_loop(
        make_world(), op_factory, clients_per_site=n_clients,
        name="%.0f%%-load" % (fraction * 100), **kwargs
    )


def _n_sites(kwargs, make_world) -> int:
    sites = kwargs.get("sites")
    if sites is not None:
        return len(sites)
    world = make_world()
    return world.n_sites
