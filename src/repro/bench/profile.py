"""cProfile entry point for the wall-clock benchmark scenarios.

Profiles one substrate scenario (default: ``fig17_throughput``) and
prints the top functions, so hot-path regressions can be diagnosed the
same way the optimizations in DESIGN.md ("Simulator performance") were
found::

    PYTHONPATH=src python -m repro.bench.profile
    PYTHONPATH=src python -m repro.bench.profile chaos_replay --sort cumulative
    PYTHONPATH=src python -m repro.bench.profile fig17_throughput --small --limit 50
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys

from .wallclock import SCENARIOS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "scenario", nargs="?", default="fig17_throughput", choices=sorted(SCENARIOS)
    )
    parser.add_argument("--small", action="store_true", help="CI-sized workload")
    parser.add_argument(
        "--sort", default="tottime",
        choices=["tottime", "cumulative", "ncalls", "pcalls"],
    )
    parser.add_argument("--limit", type=int, default=30)
    parser.add_argument("--out", metavar="PATH", help="also dump raw stats to PATH")
    args = parser.parse_args(argv)

    fn = SCENARIOS[args.scenario]
    profiler = cProfile.Profile()
    profiler.enable()
    result = fn(args.small)
    profiler.disable()

    print(
        "%s: %.3fs wall, %d events (note: cProfile overhead inflates wall time)"
        % (args.scenario, result["wall_s"], result["events"])
    )
    stats = pstats.Stats(profiler)
    if args.out:
        stats.dump_stats(args.out)
    stats.sort_stats(args.sort).print_stats(args.limit)
    return 0


if __name__ == "__main__":
    sys.exit(main())
