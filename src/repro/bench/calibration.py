"""Calibrated cost constants for the benchmark harness.

These are the *only* tuned numbers in the reproduction.  They anchor the
1-site base throughput near the paper's Fig 16 magnitudes; every other
benchmark number (scaling across sites, latency distributions, slow
commit, application throughput) is then an output of the simulation.

Derivation (8 modelled cores per server, as on the extra-large EC2
instances / two-quad-core private machines of §8.1):

* Berkeley DB reads 80 Ktps  -> 8 cores / 80e3  = 100 us per read RPC.
* Walter reads 72 Ktps       -> 8 cores / 72e3  ~ 111 us per read RPC
  ("slightly lower because it does more work ... acquiring a local lock
  and assigning a start timestamp vector", §8.2).
* Walter writes 33.5 Ktps    -> serialized commit section of ~30 us.
* Berkeley DB writes 32 Ktps -> ~31 us.
* Fig 17 notes EC2 throughput is 50-60% of the private cluster's for the
  same workload; we model that as a uniform CPU slowdown factor.
"""

from __future__ import annotations

from ..server import ServerCosts
from ..storage import (
    FLUSH_EC2,
    FLUSH_MEMORY,
    FLUSH_WRITE_CACHING_OFF,
    FLUSH_WRITE_CACHING_ON,
)

#: EC2 virtual cores deliver roughly this fraction of the private
#: cluster's per-op speed for this workload (§8.3: "50-60%").
EC2_SLOWDOWN = 1.8


def walter_costs(platform: str = "ec2") -> ServerCosts:
    """Calibrated Walter server costs for ``"ec2"`` or ``"private"``."""
    scale = _scale(platform)
    return ServerCosts(
        cores=8,
        read_op=111e-6 * scale,
        # A buffered-update RPC costs about as much as a read RPC (the
        # paper's mixed-workload throughput tracks the *request count*
        # per transaction, §8.3, implying roughly uniform RPC cost).
        write_op=111e-6 * scale,
        # Per-commit-RPC CPU: conflict-check shell, commit-record
        # marshalling, WAL buffer preparation, propagation enqueue.
        commit_op=150e-6 * scale,
        commit_critical=29.8e-6 * scale,
        apply_remote=4.3e-6 * scale,
    )


def bdb_costs(platform: str = "private") -> ServerCosts:
    """Calibrated Berkeley DB costs (Fig 16 ran on the private cluster)."""
    scale = _scale(platform)
    return ServerCosts(
        cores=8,
        read_op=100e-6 * scale,
        write_op=50e-6 * scale,
        commit_op=36e-6 * scale,
        commit_critical=31.2e-6 * scale,
        apply_remote=9e-6 * scale,
    )


def redis_costs() -> ServerCosts:
    """Redis is single-threaded with very cheap per-op work (§8.7)."""
    return ServerCosts(
        cores=1,
        read_op=12e-6,
        write_op=12e-6,
        commit_op=5e-6,
        commit_critical=2e-6,
        apply_remote=5e-6,
    )


#: Front-end (Apache+PHP) service time per ReTwis/WaltSocial application
#: operation, and the number of front-end worker slots per site.  This is
#: what bounds Fig 23's few-Kops/s magnitudes.
FRONTEND_OP_SECONDS = 2.0e-3
FRONTEND_WORKERS_PER_SITE = 20

DISK_PRESETS = {
    "ec2": FLUSH_EC2,
    "write_caching_on": FLUSH_WRITE_CACHING_ON,
    "write_caching_off": FLUSH_WRITE_CACHING_OFF,
    "memory": FLUSH_MEMORY,
}


def _scale(platform: str) -> float:
    if platform == "ec2":
        return EC2_SLOWDOWN
    if platform == "private":
        return 1.0
    raise ValueError("unknown platform %r" % (platform,))
