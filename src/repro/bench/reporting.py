"""Paper-style output formatting for benchmark results."""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from .metrics import LatencyRecorder


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned ASCII table."""
    rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def _cell(value) -> str:
    if isinstance(value, float):
        return "%.1f" % value
    return str(value)


def format_cdf(recorder: LatencyRecorder, n_points: int = 10, unit: str = "ms") -> str:
    """Print a compact CDF like the paper's latency figures."""
    scale = 1000.0 if unit == "ms" else 1.0
    lines = ["CDF of %s (%d samples):" % (recorder.name or "latency", len(recorder))]
    for latency, frac in recorder.cdf(n_points):
        bar = "#" * int(frac * 40)
        lines.append("  %7.1f %s |%-40s| %4.0f%%" % (latency * scale, unit, bar, frac * 100))
    return "\n".join(lines)


def paper_comparison(
    rows: Iterable[Tuple[str, float, float]], metric: str = "Ktps"
) -> str:
    """Table of (name, paper value, measured value) with the ratio."""
    table_rows = []
    for name, paper, measured in rows:
        ratio = measured / paper if paper else float("nan")
        table_rows.append((name, paper, measured, "%.2fx" % ratio))
    return format_table(
        ["experiment", "paper (%s)" % metric, "measured (%s)" % metric, "ratio"],
        table_rows,
    )
