"""Paper-style output formatting for benchmark results."""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from ..obs import compute_lag_report
from .metrics import LatencyRecorder


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned ASCII table."""
    rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def _cell(value) -> str:
    if isinstance(value, float):
        return "%.1f" % value
    return str(value)


def format_cdf(recorder: LatencyRecorder, n_points: int = 10, unit: str = "ms") -> str:
    """Print a compact CDF like the paper's latency figures."""
    scale = 1000.0 if unit == "ms" else 1.0
    lines = ["CDF of %s (%d samples):" % (recorder.name or "latency", len(recorder))]
    for latency, frac in recorder.cdf(n_points):
        bar = "#" * int(frac * 40)
        lines.append("  %7.1f %s |%-40s| %4.0f%%" % (latency * scale, unit, bar, frac * 100))
    return "\n".join(lines)


def format_site_observability(world) -> str:
    """Per-site observability report for a :class:`~repro.deployment.Deployment`.

    One row per site: commit-latency percentiles (from the always-on
    ``server.commit_latency`` histogram), replication / ds-durability /
    visibility lag (from the ``server.*_lag`` histograms -- replication
    lag is measured at the *receiving* site, the other two at the
    origin), the mean WAL group-commit flush size and propagation batch
    occupancy (records per PROPAGATE cast; 1.0 unless
    ``Deployment(batching=...)`` is on), and the cache hit-rate.  All
    values come from the shared
    ``repro.obs`` registry; no tracing is required, but when the world
    was built with ``tracing=True`` the trace-derived lag gauges are
    refreshed too.
    """
    registry = world.obs.registry
    if world.obs.tracing:
        # Keep the lag.* gauges in sync with the retained trace window.
        world.obs.lag_report(world.n_sites, at=world.kernel.now)
    rows = []
    for site in range(world.n_sites):
        commit = registry.histogram("server.commit_latency", site=site)
        repl = registry.histogram("server.replication_lag", site=site)
        ds = registry.histogram("server.ds_lag", site=site)
        vis = registry.histogram("server.visibility_lag", site=site)
        flush = registry.histogram("disklog.flush_batch", site=site)
        prop = registry.histogram("server.propagation_batch", site=site)
        hits = registry.counter("cache.hits", site=site).value
        misses = registry.counter("cache.misses", site=site).value
        total = hits + misses
        rows.append(
            [
                site,
                commit.count,
                commit.percentile(50) * 1e3,
                commit.percentile(95) * 1e3,
                commit.percentile(99) * 1e3,
                commit.percentile(99.9) * 1e3,
                repl.mean * 1e3,
                ds.mean * 1e3,
                vis.mean * 1e3,
                ("%.1f" % flush.mean) if flush.count else "-",
                ("%.1f" % prop.mean) if prop.count else "-",
                ("%.1f%%" % (100.0 * hits / total)) if total else "-",
            ]
        )
    return format_table(
        [
            "site",
            "commits",
            "commit p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "p99.9 (ms)",
            "repl lag (ms)",
            "ds lag (ms)",
            "vis lag (ms)",
            "wal batch",
            "prop batch",
            "cache hit",
        ],
        rows,
    )


def format_metric_histogram(hist, unit: str = "ms") -> str:
    """Render a ``repro.obs`` log-bucket histogram as bars::

        server.commit_latency{site=0} (1234 samples, mean 4.2 ms):
            <=   3.2 ms |########                | 312
    """
    scale = 1e3 if unit == "ms" else 1.0
    label = hist.name + (
        "{%s}" % ",".join("%s=%s" % (k, v) for k, v in hist.labels) if hist.labels else ""
    )
    lines = [
        "%s (%d samples, mean %.2f %s):" % (label, hist.count, hist.mean * scale, unit)
    ]
    populated = [
        (bound, n)
        for bound, n in zip(list(hist.bounds) + [float("inf")], hist.counts)
        if n
    ]
    peak = max((n for _, n in populated), default=1)
    for bound, n in populated:
        bar = "#" * max(1, int(24 * n / peak))
        lines.append("    <=%8.1f %s |%-24s| %d" % (bound * scale, unit, bar, n))
    return "\n".join(lines)


def format_lag_cdfs(world, n_points: int = 10) -> str:
    """Trace-derived lag CDFs (needs ``Deployment(tracing=True)``)."""
    report = compute_lag_report(world.obs.tracer, world.n_sites)
    sections = []
    for family, recorders in (
        ("replication lag (commit@origin -> applied@site)", report.replication),
        ("ds-durability lag (commit -> disaster-safe)", report.ds_durability),
        ("visibility lag (commit -> globally visible)", report.visibility),
    ):
        populated = {s: r for s, r in recorders.items() if len(r)}
        if not populated:
            continue
        sections.append(family + ":")
        for site, recorder in sorted(populated.items()):
            sections.append(format_cdf(recorder, n_points=n_points))
    return "\n".join(sections) if sections else "(no lag samples; tracing off?)"


def paper_comparison(
    rows: Iterable[Tuple[str, float, float]], metric: str = "Ktps"
) -> str:
    """Table of (name, paper value, measured value) with the ratio."""
    table_rows = []
    for name, paper, measured in rows:
        ratio = measured / paper if paper else float("nan")
        table_rows.append((name, paper, measured, "%.2fx" % ratio))
    return format_table(
        ["experiment", "paper (%s)" % metric, "measured (%s)" % metric, "ratio"],
        table_rows,
    )
