"""Wall-clock benchmarks for the simulation substrate.

Unlike the figure benchmarks (which report *simulated* throughput and
latency), these scenarios measure how fast the simulator itself runs:
wall-clock seconds and kernel events executed per wall-clock second on
fixed, seeded workloads.  They are the repo's performance trajectory --
``benchmarks/bench_wallclock.py`` records results in
``BENCH_wallclock.json`` at the repo root, and CI fails if events/sec
regresses more than the tolerance against the committed numbers.

Four scenarios bracket the substrate's hot paths:

* ``fig17_throughput`` -- the §8.3 mixed read/write workload on the
  4-site EC2 topology: RPC-heavy, exercises the commit path, batched
  propagation, and the network pipe model under load;
* ``fig17_traced`` -- the same workload with deep tracing enabled;
  tracing is recording-only (identical simulated schedule), so its
  events/sec relative to ``fig17_throughput`` in the same invocation is
  the tracing overhead, which CI bounds;
* ``chaos_replay`` -- the checked-in chaos seed corpus: fault
  injection, recovery, pending-record parking/draining; each replay's
  verdict is also asserted byte-identical to the stored one, so this
  scenario doubles as a schedule-determinism gate;
* ``eight_site_scaling`` -- a write-only workload on 8 uniform-RTT
  sites: propagation bookkeeping (trackers, vector clocks, per-origin
  indexes) dominates, which is where replication-layer overhead shows.

Every scenario is a deterministic function of its seed; only the
wall-clock numbers vary between machines.
"""

from __future__ import annotations

import glob
import os
import time
from typing import Any, Callable, Dict, List

from ..deployment import Deployment
from ..net import Topology
from ..storage import FLUSH_EC2
from .calibration import walter_costs
from .harness import run_closed_loop
from .workloads import mixed_tx_factory, populate, write_tx_factory

SCENARIOS: Dict[str, Callable[[bool], Dict[str, Any]]] = {}


def scenario(fn):
    SCENARIOS[fn.__name__] = fn
    return fn


def _seed_corpus_dir() -> str:
    """tests/chaos/seeds, resolved relative to the repo root (assumed to
    be two levels above src/)."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.abspath(os.path.join(here, "..", "..", ".."))
    return os.path.join(root, "tests", "chaos", "seeds")


@scenario
def fig17_throughput(small: bool = False) -> Dict[str, Any]:
    """The Fig 17 mixed panel's workhorse cell: 90% size-1 reads, 10%
    size-5 writes, 4 EC2 sites, closed loop at saturation."""
    world = Deployment(
        n_sites=4, costs=walter_costs("ec2"), flush_latency=FLUSH_EC2, seed=17
    )
    keys = populate(world, n_keys=4000)
    factory = mixed_tx_factory(keys, 1, 5)
    start = time.perf_counter()
    result = run_closed_loop(
        world,
        factory,
        clients_per_site=16 if small else 48,
        warmup=0.1 if small else 0.2,
        measure=0.2 if small else 0.4,
        name="fig17-mixed",
    )
    wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "events": world.kernel.events_executed,
        "sim": {"ops": result.ops, "ktps": round(result.ktps, 3)},
    }


@scenario
def fig17_traced(small: bool = False) -> Dict[str, Any]:
    """``fig17_throughput`` with deep tracing on: same seed, same
    simulated schedule (tracing is recording-only), so comparing its
    events/sec against the untraced scenario *within one invocation*
    measures pure tracing overhead, independent of the machine."""
    world = Deployment(
        n_sites=4, costs=walter_costs("ec2"), flush_latency=FLUSH_EC2, seed=17,
        tracing="deep",
    )
    keys = populate(world, n_keys=4000)
    factory = mixed_tx_factory(keys, 1, 5)
    start = time.perf_counter()
    result = run_closed_loop(
        world,
        factory,
        clients_per_site=16 if small else 48,
        warmup=0.1 if small else 0.2,
        measure=0.2 if small else 0.4,
        name="fig17-mixed",
    )
    wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "events": world.kernel.events_executed,
        "sim": {"ops": result.ops, "ktps": round(result.ktps, 3)},
    }


@scenario
def chaos_replay(small: bool = False) -> Dict[str, Any]:
    """Replay the checked-in chaos seed corpus and assert every verdict
    is byte-identical to the stored one (schedule determinism)."""
    from ..chaos import ReproArtifact

    paths = sorted(glob.glob(os.path.join(_seed_corpus_dir(), "seed-*.json")))
    if not paths:
        raise RuntimeError("no chaos seed corpus under %s" % _seed_corpus_dir())
    if small:
        paths = paths[:3]
    repeats = 1 if small else 3
    events = 0
    start = time.perf_counter()
    for _ in range(repeats):
        for path in paths:
            artifact = ReproArtifact.load(path)
            result = artifact.replay()
            if not result.passed:
                raise AssertionError("corpus seed failed: %s" % path)
            if result.verdict_obj() != artifact.verdict:
                raise AssertionError("verdict drifted on %s" % path)
            events += result.world.kernel.events_executed
    wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "events": events,
        "sim": {"seeds": len(paths), "repeats": repeats, "verdicts_identical": True},
    }


@scenario
def eight_site_scaling(small: bool = False) -> Dict[str, Any]:
    """Write-only closed loop on 8 uniform-RTT sites: stresses batched
    propagation, remote apply, and tracker bookkeeping at the largest
    site count the experiments use."""
    world = Deployment(
        n_sites=8,
        topology=Topology.uniform(8, rtt_ms=80.0),
        costs=walter_costs("ec2"),
        flush_latency=FLUSH_EC2,
        seed=23,
    )
    keys = populate(world, n_keys=2000)
    factory = write_tx_factory(keys, 1)
    start = time.perf_counter()
    result = run_closed_loop(
        world,
        factory,
        clients_per_site=6 if small else 12,
        warmup=0.3 if small else 0.6,
        measure=0.3 if small else 0.8,
        name="8site-write",
    )
    wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "events": world.kernel.events_executed,
        "sim": {"ops": result.ops, "ktps": round(result.ktps, 3)},
    }


def run_scenarios(names: List[str] = None, small: bool = False) -> Dict[str, Any]:
    """Run the selected scenarios; returns name -> result dict with
    ``wall_s``, ``events``, ``events_per_s``, and scenario metadata."""
    results: Dict[str, Any] = {}
    for name in names or list(SCENARIOS):
        out = SCENARIOS[name](small)
        out["events_per_s"] = round(out["events"] / out["wall_s"], 1)
        out["wall_s"] = round(out["wall_s"], 3)
        results[name] = out
    return results
