"""Wall-clock benchmarks for the simulation substrate.

Unlike the figure benchmarks (which report *simulated* throughput and
latency), these scenarios measure how fast the simulator itself runs:
wall-clock seconds and kernel events executed per wall-clock second on
fixed, seeded workloads.  They are the repo's performance trajectory --
``benchmarks/bench_wallclock.py`` records results in
``BENCH_wallclock.json`` at the repo root, and CI fails if events/sec
regresses more than the tolerance against the committed numbers.

Four scenarios bracket the substrate's hot paths:

* ``fig17_throughput`` -- the §8.3 mixed read/write workload on the
  4-site EC2 topology: RPC-heavy, exercises the commit path, batched
  propagation, and the network pipe model under load;
* ``fig17_traced`` -- the same workload with deep tracing enabled;
  tracing is recording-only (identical simulated schedule), so its
  events/sec relative to ``fig17_throughput`` in the same invocation is
  the tracing overhead, which CI bounds;
* ``chaos_replay`` -- the checked-in chaos seed corpus: fault
  injection, recovery, pending-record parking/draining; each replay's
  verdict is also asserted byte-identical to the stored one, so this
  scenario doubles as a schedule-determinism gate;
* ``eight_site_scaling`` -- a write-only workload on 8 uniform-RTT
  sites: propagation bookkeeping (trackers, vector clocks, per-origin
  indexes) dominates, which is where replication-layer overhead shows.

Every scenario is a deterministic function of its seed; only the
wall-clock numbers vary between machines.
"""

from __future__ import annotations

import glob
import os
import time
from typing import Any, Callable, Dict, List

from ..deployment import Deployment
from ..net import Topology
from ..storage import FLUSH_EC2
from .calibration import walter_costs
from .harness import run_closed_loop
from .workloads import eight_site_write_scenario, mixed_tx_factory, populate

SCENARIOS: Dict[str, Callable[[bool], Dict[str, Any]]] = {}


def scenario(fn):
    SCENARIOS[fn.__name__] = fn
    return fn


def _seed_corpus_dir() -> str:
    """tests/chaos/seeds, resolved relative to the repo root (assumed to
    be two levels above src/)."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.abspath(os.path.join(here, "..", "..", ".."))
    return os.path.join(root, "tests", "chaos", "seeds")


@scenario
def fig17_throughput(small: bool = False) -> Dict[str, Any]:
    """The Fig 17 mixed panel's workhorse cell: 90% size-1 reads, 10%
    size-5 writes, 4 EC2 sites, closed loop at saturation."""
    world = Deployment(
        n_sites=4, costs=walter_costs("ec2"), flush_latency=FLUSH_EC2, seed=17
    )
    keys = populate(world, n_keys=4000)
    factory = mixed_tx_factory(keys, 1, 5)
    start = time.perf_counter()
    result = run_closed_loop(
        world,
        factory,
        clients_per_site=16 if small else 48,
        warmup=0.1 if small else 0.2,
        measure=0.2 if small else 0.4,
        name="fig17-mixed",
    )
    wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "events": world.kernel.events_executed,
        "sim": {"ops": result.ops, "ktps": round(result.ktps, 3)},
    }


@scenario
def fig17_traced(small: bool = False) -> Dict[str, Any]:
    """``fig17_throughput`` with deep tracing on: same seed, same
    simulated schedule (tracing is recording-only), so comparing its
    events/sec against the untraced scenario *within one invocation*
    measures pure tracing overhead, independent of the machine."""
    world = Deployment(
        n_sites=4, costs=walter_costs("ec2"), flush_latency=FLUSH_EC2, seed=17,
        tracing="deep",
    )
    keys = populate(world, n_keys=4000)
    factory = mixed_tx_factory(keys, 1, 5)
    start = time.perf_counter()
    result = run_closed_loop(
        world,
        factory,
        clients_per_site=16 if small else 48,
        warmup=0.1 if small else 0.2,
        measure=0.2 if small else 0.4,
        name="fig17-mixed",
    )
    wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "events": world.kernel.events_executed,
        "sim": {"ops": result.ops, "ktps": round(result.ktps, 3)},
    }


@scenario
def chaos_replay(small: bool = False) -> Dict[str, Any]:
    """Replay the checked-in chaos seed corpus and assert every verdict
    is byte-identical to the stored one (schedule determinism)."""
    from ..chaos import ReproArtifact

    paths = sorted(glob.glob(os.path.join(_seed_corpus_dir(), "seed-*.json")))
    if not paths:
        raise RuntimeError("no chaos seed corpus under %s" % _seed_corpus_dir())
    if small:
        paths = paths[:3]
    repeats = 1 if small else 3
    events = 0
    start = time.perf_counter()
    for _ in range(repeats):
        for path in paths:
            artifact = ReproArtifact.load(path)
            result = artifact.replay()
            if not result.passed:
                raise AssertionError("corpus seed failed: %s" % path)
            if result.verdict_obj() != artifact.verdict:
                raise AssertionError("verdict drifted on %s" % path)
            events += result.world.kernel.events_executed
    wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "events": events,
        "sim": {"seeds": len(paths), "repeats": repeats, "verdicts_identical": True},
    }


def _eight_site_deploy_kwargs() -> Dict[str, Any]:
    return dict(
        n_sites=8,
        topology=Topology.uniform(8, rtt_ms=80.0),
        costs=walter_costs("ec2"),
        flush_latency=FLUSH_EC2,
        seed=23,
    )


def _eight_site_params(small: bool) -> Dict[str, Any]:
    return dict(
        clients_per_site=6 if small else 12,
        warmup=0.3 if small else 0.6,
        measure=0.3 if small else 0.8,
    )


def _metrics_sha256(snapshot: Dict[str, Any]) -> str:
    import hashlib
    import json

    return hashlib.sha256(
        json.dumps(snapshot, sort_keys=True).encode()
    ).hexdigest()[:16]


@scenario
def eight_site_scaling(small: bool = False) -> Dict[str, Any]:
    """Write-only closed loop on 8 uniform-RTT sites: stresses batched
    propagation, remote apply, and tracker bookkeeping at the largest
    site count the experiments use.  Runs the serial reference executor;
    ``eight_site_parallel`` runs the identical workload on the parallel
    one, and the bench runner cross-checks ops/events/clock/metrics."""
    from ..sim.parallel import serial_payloads

    start = time.perf_counter()
    cpu_start = time.process_time()
    world = Deployment(**_eight_site_deploy_kwargs())
    sim = eight_site_write_scenario(world, **_eight_site_params(small))
    cpu = time.process_time() - cpu_start
    wall = time.perf_counter() - start
    serial = serial_payloads(world, sim)
    return {
        "wall_s": wall,
        "events": world.kernel.events_executed,
        "sim": {
            "ops": sim["ops"],
            "now": sim["now"],
            "metrics_sha256": _metrics_sha256(serial.metrics_snapshot()),
            # CPU seconds of the whole build+run, for the parallel
            # scenario's critical-path projection: CPU-to-CPU comparison
            # stays meaningful on a loaded or core-starved machine where
            # wall clocks include descheduling.
            "cpu_s": round(cpu, 3),
        },
    }


@scenario
def eight_site_parallel(small: bool = False) -> Dict[str, Any]:
    """``eight_site_scaling`` on the conservative parallel executor:
    4 spawn workers, 2 sites each, lookahead = the 40 ms jitter-free
    one-way latency.  ``sim`` carries the same equivalence fields as the
    serial scenario so the runner can assert the executors agree.

    Runs in ``mp-replay`` mode: after the live run, each cluster is
    replayed solo in a fresh process from the recorded barrier traffic.
    ``wall_s`` covers the live run only; ``solo_max_cpu_s`` is the
    contention-free critical path, which is what each worker costs on a
    machine with one core per worker (the live ``max_worker_cpu_s``
    additionally pays for co-scheduling cache pollution whenever the
    workers time-slice shared cores)."""
    from ..sim.parallel import run_scenario

    result = run_scenario(
        "repro.bench.workloads:eight_site_write_scenario",
        deploy_kwargs=_eight_site_deploy_kwargs(),
        params=_eight_site_params(small),
        workers=4,
        mode="mp-replay",
    )
    ops = sum(r["ops"] for r in result.scenario_results)
    solo = result.solo_cpu_s
    return {
        "wall_s": result.live_wall_s,
        "events": result.events_executed,
        "sim": {
            "ops": ops,
            "now": round(result.now, 9),
            "metrics_sha256": _metrics_sha256(result.metrics_snapshot()),
            "workers": 4,
            # Busiest worker's CPU seconds in the live (concurrent) run.
            "max_worker_cpu_s": round(max(result.worker_cpu_s), 3),
            # Busiest worker's CPU seconds replayed alone on a quiet
            # core: the multi-core critical path, used for the projected
            # speedup on machines with fewer cores than workers.
            "solo_max_cpu_s": round(max(solo), 3) if solo else None,
        },
    }


@scenario
def parallel_digest_gate(small: bool = False) -> Dict[str, Any]:
    """Serial vs parallel (mp, one worker per site) on the schedule-digest
    workload: canonical span digests, merged metrics snapshots, and trace
    verdicts must all be byte-identical.  CI runs this as its
    ``parallel-digest`` job."""
    from ..sim.parallel import (
        canonical_verdict,
        run_scenario,
        serial_payloads,
        trace_fingerprint,
    )
    from .workloads import mixed_rw_scenario

    deploy_kwargs = dict(n_sites=3, seed=1234, tracing=True, trace=True)
    params = dict(n_keys=60, measure=0.15) if small else None

    start = time.perf_counter()
    world = Deployment(**deploy_kwargs)
    sim = mixed_rw_scenario(world, **(params or {}))
    serial = serial_payloads(world, sim)
    parallel = run_scenario(
        "repro.bench.workloads:mixed_rw_scenario",
        deploy_kwargs=deploy_kwargs,
        params=params,
        workers=3,
        mode="mp",
    )
    wall = time.perf_counter() - start

    checks = {
        "digest": serial.canonical_digest() == parallel.canonical_digest(),
        "metrics": serial.metrics_snapshot() == parallel.metrics_snapshot(),
        "trace": trace_fingerprint(serial.merged_trace())
        == trace_fingerprint(parallel.merged_trace()),
        "verdict": canonical_verdict(serial.merged_trace(), serial.abandoned_versions)
        == canonical_verdict(parallel.merged_trace(), parallel.abandoned_versions),
        "events": serial.events_executed == parallel.events_executed,
    }
    if not all(checks.values()):
        raise AssertionError(
            "dual-executor gate failed: %s"
            % sorted(k for k, ok in checks.items() if not ok)
        )
    return {
        "wall_s": wall,
        "events": serial.events_executed + parallel.events_executed,
        "sim": {
            "digest": serial.canonical_digest()[:16],
            "identical": True,
            "ops": sim["ops"],
        },
    }


def _shard_run(shards: int, small: bool, batching=None, with_bytes: bool = False) -> Dict[str, Any]:
    """One closed-loop mixed run on 4 base EC2 sites split into
    ``shards`` keyspace shards; returns aggregate committed throughput."""
    world = Deployment(
        n_sites=4, costs=walter_costs("ec2"), flush_latency=FLUSH_EC2,
        seed=31, shards=shards, batching=batching,
    )
    keys = populate(world, n_keys=500 * world.n_sites)
    factory = mixed_tx_factory(keys, 1, 5)
    result = run_closed_loop(
        world,
        factory,
        clients_per_site=8 if small else 16,
        warmup=0.1,
        measure=0.2 if small else 0.4,
        name="shard-scaling-%d" % shards,
    )
    out = {
        "events": world.kernel.events_executed,
        "ops": result.ops,
        "ktps": round(result.ktps, 3),
    }
    if with_bytes:
        out["bytes"] = _cross_site_bytes(world)
    return out


@scenario
def shard_scaling(small: bool = False) -> Dict[str, Any]:
    """Throughput vs shards-per-site (DESIGN.md §13): the Fig 17 mixed
    workload on 4 base sites at 1 and 4 keyspace shards each.  Every
    shard server brings its own cores, WAL device, and propagation
    stream, so aggregate committed throughput must scale; the ISSUE 9
    acceptance gate requires >= 2x at 4 shards."""
    start = time.perf_counter()
    one = _shard_run(1, small)
    four = _shard_run(4, small)
    wall = time.perf_counter() - start
    speedup = four["ktps"] / one["ktps"] if one["ktps"] else 0.0
    return {
        "wall_s": wall,
        "events": one["events"] + four["events"],
        "sim": {
            "ktps_shards1": one["ktps"],
            "ktps_shards4": four["ktps"],
            "ops_shards1": one["ops"],
            "ops_shards4": four["ops"],
            "speedup": round(speedup, 3),
        },
    }


@scenario
def sharded_eight_site(small: bool = False) -> Dict[str, Any]:
    """The eight-site write workload with the 8 logical sites built as
    4 base sites x 2 shards (LAN between co-located shard servers, the
    uniform 80 ms WAN between bases): propagation bookkeeping at the
    same logical fan-out as ``eight_site_scaling``, plus the sharded
    topology's mixed LAN/WAN link model."""
    start = time.perf_counter()
    cpu_start = time.process_time()
    world = Deployment(
        n_sites=4,
        topology=Topology.uniform(4, rtt_ms=80.0),
        costs=walter_costs("ec2"),
        flush_latency=FLUSH_EC2,
        seed=23,
        shards=2,
    )
    sim = eight_site_write_scenario(world, **_eight_site_params(small))
    cpu = time.process_time() - cpu_start
    wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "events": world.kernel.events_executed,
        "sim": {
            "ops": sim["ops"],
            "now": sim["now"],
            "cpu_s": round(cpu, 3),
        },
    }


@scenario
def eight_site_scaling_small(small: bool = False) -> Dict[str, Any]:
    """CI bench-smoke variant of ``eight_site_scaling``: always the
    ``--small`` parameters, so the batching regression gate has a
    seconds-scale scenario regardless of the runner's ``--small`` flag."""
    return eight_site_scaling(True)


@scenario
def shard_scaling_small(small: bool = False) -> Dict[str, Any]:
    """CI bench-smoke variant of ``shard_scaling`` (see
    ``eight_site_scaling_small``)."""
    return shard_scaling(True)


@scenario
def eight_site_batching_ab(small: bool = False) -> Dict[str, Any]:
    """Interleaved A/B for hot-path batching (DESIGN.md §14): the
    eight-site write workload run back-to-back with batching off and on
    in the same invocation, so machine noise hits both arms equally.
    Batching changes the simulated schedule (fewer casts, shared WAL
    flushes), so the meaningful comparison is wall-clock per fixed
    simulated workload -- ``speedup_wall = wall_off / wall_on`` -- plus
    the simulated throughput gain visible in ``ops_on / ops_off``."""
    runs = {}
    for arm, batching in (("off", None), ("on", True)):
        world = Deployment(**_eight_site_deploy_kwargs(), batching=batching)
        # Time the workload only: deployment construction is identical
        # in both arms and would dilute the hot-path ratio.
        start = time.perf_counter()
        sim = eight_site_write_scenario(world, **_eight_site_params(small))
        runs[arm] = {
            "wall": time.perf_counter() - start,
            "events": world.kernel.events_executed,
            "ops": sim["ops"],
        }
    off, on = runs["off"], runs["on"]
    return {
        "wall_s": off["wall"] + on["wall"],
        "events": off["events"] + on["events"],
        "sim": {
            "wall_off_s": round(off["wall"], 3),
            "wall_on_s": round(on["wall"], 3),
            "events_off": off["events"],
            "events_on": on["events"],
            "ops_off": off["ops"],
            "ops_on": on["ops"],
            "speedup_wall": round(off["wall"] / on["wall"], 3),
        },
    }


def _cross_site_bytes(world) -> int:
    """Total bytes pushed through the cross-site FIFO pipes -- the
    resource propagation batching conserves (per-record acks collapse to
    per-batch acks; delta-encoded VTS and shared headers shrink the
    PROPAGATE stream itself)."""
    snap = world.metrics_snapshot()
    return sum(
        v for k, v in snap["counters"].items() if k.startswith("net.bytes{")
    )


@scenario
def fig17_batching_ab(small: bool = False) -> Dict[str, Any]:
    """Interleaved A/B for batching on the Fig 17 mixed workload: same
    deployment and closed loop as ``fig17_throughput``, batching off then
    on.  Committed throughput here is CPU/WAL-latency-bound (clients
    never wait on propagation under PSI), so the simulated Ktps column
    gates *parity*; the measurable simulated gain is the cross-site
    bandwidth batching frees (``bytes_gain``), plus the wall-clock
    speedup of simulating the same workload."""
    runs = {}
    for arm, batching in (("off", None), ("on", True)):
        world = Deployment(
            n_sites=4, costs=walter_costs("ec2"), flush_latency=FLUSH_EC2,
            seed=17, batching=batching,
        )
        keys = populate(world, n_keys=4000)
        factory = mixed_tx_factory(keys, 1, 5)
        start = time.perf_counter()
        result = run_closed_loop(
            world,
            factory,
            clients_per_site=16 if small else 48,
            warmup=0.1 if small else 0.2,
            measure=0.2 if small else 0.4,
            name="fig17-mixed",
        )
        runs[arm] = {
            "wall": time.perf_counter() - start,
            "events": world.kernel.events_executed,
            "ops": result.ops,
            "ktps": round(result.ktps, 3),
            "bytes": _cross_site_bytes(world),
        }
    off, on = runs["off"], runs["on"]
    return {
        "wall_s": off["wall"] + on["wall"],
        "events": off["events"] + on["events"],
        "sim": {
            "wall_off_s": round(off["wall"], 3),
            "wall_on_s": round(on["wall"], 3),
            "ktps_off": off["ktps"],
            "ktps_on": on["ktps"],
            "ktps_gain": round(on["ktps"] / off["ktps"], 3) if off["ktps"] else 0.0,
            "bytes_off": off["bytes"],
            "bytes_on": on["bytes"],
            "bytes_gain": (
                round(off["bytes"] / on["bytes"], 3) if on["bytes"] else 0.0
            ),
        },
    }


@scenario
def shard_batching_ab(small: bool = False) -> Dict[str, Any]:
    """Interleaved A/B for batching on the sharded mixed workload
    (4 base sites x 4 shards, the ``shard_scaling`` upper cell):
    per-shard propagation streams multiply the per-record message tax,
    so this is where propagation batching pays most in simulated Ktps."""
    start = time.perf_counter()
    off = _shard_run(4, small, batching=None, with_bytes=True)
    wall_off = time.perf_counter() - start
    start = time.perf_counter()
    on = _shard_run(4, small, batching=True, with_bytes=True)
    wall_on = time.perf_counter() - start
    return {
        "wall_s": wall_off + wall_on,
        "events": off["events"] + on["events"],
        "sim": {
            "wall_off_s": round(wall_off, 3),
            "wall_on_s": round(wall_on, 3),
            "ktps_off": off["ktps"],
            "ktps_on": on["ktps"],
            "ops_off": off["ops"],
            "ops_on": on["ops"],
            "ktps_gain": round(on["ktps"] / off["ktps"], 3) if off["ktps"] else 0.0,
            "bytes_off": off["bytes"],
            "bytes_on": on["bytes"],
            "bytes_gain": (
                round(off["bytes"] / on["bytes"], 3) if on["bytes"] else 0.0
            ),
        },
    }


def run_scenarios(
    names: List[str] = None, small: bool = False, repeats: int = 1
) -> Dict[str, Any]:
    """Run the selected scenarios ``repeats`` times each; returns name ->
    result dict with the median ``wall_s``, per-run ``runs_wall_s``,
    ``events``, ``events_per_s``, and scenario metadata.  Every repeat
    must execute the identical simulated schedule (same event count) --
    a free determinism check on top of the timing."""
    results: Dict[str, Any] = {}
    for name in names or list(SCENARIOS):
        runs: List[float] = []
        out: Dict[str, Any] = {}
        for i in range(max(1, repeats)):
            run = SCENARIOS[name](small)
            if i == 0:
                out = run
            elif run["events"] != out["events"]:
                raise AssertionError(
                    "%s: events drifted across repeats (%d vs %d)"
                    % (name, run["events"], out["events"])
                )
            else:
                # CPU cost of a deterministic schedule is a constant plus
                # non-negative interference noise (co-tenants, cache
                # pollution), so the min across repeats is the tightest
                # estimate of the intrinsic cost.
                sim, first = run.get("sim"), out.get("sim")
                if isinstance(sim, dict) and isinstance(first, dict):
                    for key in (
                        "cpu_s",
                        "max_worker_cpu_s",
                        "solo_max_cpu_s",
                        "wall_off_s",
                        "wall_on_s",
                    ):
                        a, b = first.get(key), sim.get(key)
                        if a is not None and b is not None:
                            first[key] = min(a, b)
            runs.append(round(run["wall_s"], 3))
        ordered = sorted(runs)
        mid = len(ordered) // 2
        median = (
            ordered[mid]
            if len(ordered) % 2
            else (ordered[mid - 1] + ordered[mid]) / 2.0
        )
        out["runs_wall_s"] = runs
        out["wall_s"] = round(median, 3)
        out["events_per_s"] = round(out["events"] / median, 1)
        sim = out.get("sim")
        if (
            isinstance(sim, dict)
            and "speedup_wall" in sim
            and sim.get("wall_on_s")
        ):
            # Keep the A/B headline consistent with the min-merged arms.
            sim["speedup_wall"] = round(sim["wall_off_s"] / sim["wall_on_s"], 3)
        results[name] = out
    return results
