"""Latency/throughput measurement utilities for the benchmark harness."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


class LatencyRecorder:
    """Collects latency samples (simulated seconds) and summarizes them."""

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: List[float] = []

    def record(self, latency: float) -> None:
        self.samples.append(latency)

    def __len__(self) -> int:
        return len(self.samples)

    def percentile(self, p: float) -> float:
        """Linear-interpolation percentile, p in [0, 100]."""
        if not self.samples:
            raise ValueError("no samples in %r" % (self.name,))
        data = sorted(self.samples)
        if len(data) == 1:
            return data[0]
        rank = (p / 100.0) * (len(data) - 1)
        low = int(math.floor(rank))
        high = min(low + 1, len(data) - 1)
        frac = rank - low
        # a + frac*(b-a) rather than (1-frac)*a + frac*b: the former is
        # exact when a == b, keeping percentiles monotone in p.
        return data[low] + frac * (data[high] - data[low])

    # The quantile properties (like mean/max/min below) return 0.0 with
    # no samples -- an idle site in a lag report or an all-abort run is
    # not an error; percentile() still raises, so code asking for a
    # specific quantile of nothing fails loudly.
    @property
    def p50(self) -> float:
        return self.percentile(50) if self.samples else 0.0

    @property
    def p95(self) -> float:
        return self.percentile(95) if self.samples else 0.0

    @property
    def p99(self) -> float:
        return self.percentile(99) if self.samples else 0.0

    @property
    def p999(self) -> float:
        return self.percentile(99.9) if self.samples else 0.0

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def max(self) -> float:
        return max(self.samples) if self.samples else 0.0

    @property
    def min(self) -> float:
        return min(self.samples) if self.samples else 0.0

    def cdf(self, n_points: int = 50) -> List[Tuple[float, float]]:
        """(latency, cumulative fraction) points for plotting/printing."""
        if not self.samples:
            return []
        data = sorted(self.samples)
        points = []
        for i in range(1, n_points + 1):
            frac = i / n_points
            idx = min(len(data) - 1, int(frac * len(data)) - 1)
            points.append((data[max(idx, 0)], frac))
        return points

    def summary_ms(self) -> Dict[str, float]:
        if not self.samples:
            return {
                "p50_ms": 0.0,
                "p95_ms": 0.0,
                "p99_ms": 0.0,
                "p999_ms": 0.0,
                "mean_ms": 0.0,
                "max_ms": 0.0,
                "n": 0.0,
            }
        return {
            "p50_ms": self.p50 * 1000,
            "p95_ms": self.p95 * 1000,
            "p99_ms": self.p99 * 1000,
            "p999_ms": self.p999 * 1000,
            "mean_ms": self.mean * 1000,
            "max_ms": self.max * 1000,
            "n": float(len(self.samples)),
        }


@dataclass
class BenchResult:
    """Outcome of one closed-loop benchmark configuration."""

    name: str
    ops: int
    errors: int
    duration: float
    latencies: LatencyRecorder
    by_label: Dict[str, LatencyRecorder] = field(default_factory=dict)
    #: Deterministic ``repro.obs`` registry snapshot taken when the
    #: measurement window closed (None for worlds without observability,
    #: e.g. the baseline comparators).
    metrics: Optional[Dict[str, Dict[str, Any]]] = None

    @property
    def throughput(self) -> float:
        """Operations per simulated second."""
        return self.ops / self.duration if self.duration > 0 else 0.0

    @property
    def ktps(self) -> float:
        return self.throughput / 1000.0

    def describe(self) -> str:
        parts = [
            "%s: %.1f Kops/s (%d ops / %.2fs)" % (self.name, self.ktps, self.ops, self.duration)
        ]
        if len(self.latencies):
            parts.append(
                "  latency p50=%.1fms p99=%.1fms p99.9=%.1fms"
                % (self.latencies.p50 * 1e3, self.latencies.p99 * 1e3, self.latencies.p999 * 1e3)
            )
        return "\n".join(parts)
