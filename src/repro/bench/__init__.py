"""Benchmark harness: calibration, workloads, closed-loop driver, reports."""

from .calibration import (
    DISK_PRESETS,
    EC2_SLOWDOWN,
    FRONTEND_OP_SECONDS,
    FRONTEND_WORKERS_PER_SITE,
    bdb_costs,
    redis_costs,
    walter_costs,
)
from .harness import find_saturation, run_at_fraction_of_max, run_closed_loop, run_closed_loop_raw
from .metrics import BenchResult, LatencyRecorder
from .reporting import (
    format_cdf,
    format_lag_cdfs,
    format_metric_histogram,
    format_site_observability,
    format_table,
    paper_comparison,
)
from .workloads import (
    KeySpace,
    OBJECT_SIZE,
    PAYLOAD,
    cset_tx_factory,
    mixed_tx_factory,
    populate,
    read_tx_factory,
    slow_commit_tx_factory,
    write_tx_factory,
)

__all__ = [
    "BenchResult",
    "DISK_PRESETS",
    "EC2_SLOWDOWN",
    "FRONTEND_OP_SECONDS",
    "FRONTEND_WORKERS_PER_SITE",
    "KeySpace",
    "LatencyRecorder",
    "OBJECT_SIZE",
    "PAYLOAD",
    "bdb_costs",
    "cset_tx_factory",
    "find_saturation",
    "format_cdf",
    "format_lag_cdfs",
    "format_metric_histogram",
    "format_site_observability",
    "format_table",
    "mixed_tx_factory",
    "paper_comparison",
    "populate",
    "read_tx_factory",
    "redis_costs",
    "run_at_fraction_of_max",
    "run_closed_loop",
    "run_closed_loop_raw",
    "slow_commit_tx_factory",
    "walter_costs",
    "write_tx_factory",
]
