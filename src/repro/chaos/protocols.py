"""Protocol-zoo chaos: seeded faults against any registry backend.

The main chaos harness (:mod:`repro.chaos.harness`) drives the full
Walter deployment with its structural fault catalog (crashes, site
removal, container handover).  This module is the light cross-protocol
counterpart: the *same* seeded workload and fault pattern runs against
any backend from :mod:`repro.protocols.registry`, and the verdict comes
from the backend's **own oracle** plus the inclusion-lattice report --
every protocol is model-checked against the isolation level it claims,
not against PSI.

One :func:`run_protocol_chaos` call is one experiment:

1. build the backend from ``(protocol, seed)``;
2. spawn seeded clients (writers only at ``backend.writable_sites``)
   and a fault process injecting partitions and loss bursts drawn from
   the same seed;
3. **repair**: at the horizon, heal every partition and cancel loss,
   then wait for every client to drain (bounded -- a client that cannot
   finish is a liveness violation);
4. **judge**: settle, then run ``backend.check()`` and
   ``backend.lattice_report()`` over the recorded history.

Everything is a deterministic function of the config: same protocol +
seed, same verdict, for every protocol in the registry.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from ..spec.checker import Violation
from .schedule import canonical_json

#: Extra sim-time past the horizon for draining client timeouts (the SI
#: baseline's cross-site RPCs time out at 30 s) and replication retries.
DRAIN_GRACE = 200.0


@dataclass(frozen=True)
class ProtocolChaosConfig:
    """Everything that determines a protocol-zoo chaos run."""

    protocol: str
    seed: int
    n_sites: int = 3
    horizon: float = 20.0
    fault_budget: int = 4
    clients_per_site: int = 2
    txs_per_client: int = 6
    n_keys: int = 6
    settle: float = 40.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "seed": self.seed,
            "n_sites": self.n_sites,
            "horizon": self.horizon,
            "fault_budget": self.fault_budget,
            "clients_per_site": self.clients_per_site,
            "txs_per_client": self.txs_per_client,
            "n_keys": self.n_keys,
            "settle": self.settle,
        }

    @classmethod
    def from_dict(cls, obj: Dict[str, Any]) -> "ProtocolChaosConfig":
        return cls(**obj)


@dataclass
class ProtocolChaosResult:
    """Outcome of one protocol-zoo chaos run."""

    config: ProtocolChaosConfig
    violations: List[Violation] = field(default_factory=list)
    #: level name -> violations from re-checking at that weaker level.
    lattice: Dict[str, List[Violation]] = field(default_factory=dict)
    outcomes: Dict[str, int] = field(default_factory=dict)
    applied_faults: List[str] = field(default_factory=list)
    client_errors: List[str] = field(default_factory=list)
    end_time: float = 0.0
    backend: Any = None  # the ProtocolBackend, for post-mortem inspection

    @property
    def passed(self) -> bool:
        return not self.violations and not any(self.lattice.values())

    def verdict_obj(self) -> Dict[str, Any]:
        return {
            "passed": self.passed,
            "violations": [
                {"property": v.property_name, "detail": v.detail}
                for v in self.violations
            ],
            "lattice": {
                level: [
                    {"property": v.property_name, "detail": v.detail} for v in vs
                ]
                for level, vs in sorted(self.lattice.items())
            },
            "outcomes": dict(sorted(self.outcomes.items())),
            "applied_faults": list(self.applied_faults),
            "end_time": round(self.end_time, 9),
        }

    def verdict_json(self) -> str:
        return canonical_json(self.verdict_obj())


def generate_protocol_faults(
    config: ProtocolChaosConfig,
) -> List[Tuple[float, str, Dict[str, Any]]]:
    """Draw a deterministic ``(at, kind, args)`` fault list from the
    config seed: inter-site partitions (healed within the horizon by
    their paired ``heal`` event or by repair) and loss bursts."""
    rng = random.Random("protocol-chaos:%s:%d" % (config.protocol, config.seed))
    events: List[Tuple[float, str, Dict[str, Any]]] = []
    for _ in range(config.fault_budget):
        at = rng.uniform(0.05, config.horizon * 0.7)
        if rng.random() < 0.6 and config.n_sites >= 2:
            a, b = rng.sample(range(config.n_sites), 2)
            duration = rng.uniform(0.5, config.horizon * 0.25)
            events.append((at, "partition", {"a": a, "b": b}))
            events.append((at + duration, "heal", {"a": a, "b": b}))
        else:
            events.append(
                (
                    at,
                    "loss_burst",
                    {
                        "rate": round(rng.uniform(0.05, 0.3), 3),
                        "duration": round(rng.uniform(0.5, 2.0), 3),
                    },
                )
            )
    events.sort(key=lambda e: (e[0], e[1]))
    return events


def _inject(backend, events, applied: List[str]):
    """Generator: walk the fault list against the backend's network."""
    kernel = backend.kernel
    network = backend.network
    base_loss = network.loss_rate

    def _end_burst(until):
        def cb():
            if kernel.now >= until:
                network.loss_rate = base_loss

        return cb

    for at, kind, args in events:
        if at > kernel.now:
            yield kernel.timeout(at - kernel.now)
        if kind == "partition":
            network.partition(args["a"], args["b"])
        elif kind == "heal":
            network.heal(args["a"], args["b"])
        elif kind == "loss_burst":
            until = kernel.now + args["duration"]
            network.loss_rate = max(network.loss_rate, args["rate"])
            kernel.call_at(until, _end_burst(until))
        applied.append(kind)


def _client(backend, session, keys, rng, txs_per_client, errors: List[str]):
    """Generator: one session's seeded read-modify-write loop.  Faults
    surface as exceptions (RPC timeouts, doomed transactions, failed
    proposals); each one is recorded and the client moves on -- the
    oracles judge what actually committed."""
    kernel = backend.kernel
    can_write = session.site in backend.writable_sites
    for i in range(txs_per_client):
        yield kernel.timeout(rng.uniform(0.01, 0.4))
        try:
            tid = yield from session.begin()
            k1 = rng.choice(keys)
            k2 = rng.choice(keys)
            value = yield from session.read(tid, k1)
            if can_write and rng.random() < 0.8:
                yield from session.write(
                    tid, k2, "%s:%d:%s" % (session.name, i, value)
                )
            else:
                yield from session.read(tid, k2)
            yield from session.commit(tid)
        except Exception as exc:  # noqa: BLE001 - chaos makes ops fail
            errors.append("%s tx%d: %s: %s" % (session.name, i, type(exc).__name__, exc))


def run_protocol_chaos(config: ProtocolChaosConfig) -> ProtocolChaosResult:
    """Run one protocol-zoo chaos experiment; see the module docstring."""
    from ..protocols.registry import build

    backend = build(config.protocol, n_sites=config.n_sites, seed=config.seed)
    keys = ["pk%d" % i for i in range(config.n_keys)]
    events = generate_protocol_faults(config)

    applied: List[str] = []
    errors: List[str] = []
    backend.kernel.spawn(_inject(backend, events, applied), name="pchaos.injector")
    procs = []
    rng = random.Random(
        "protocol-chaos-clients:%s:%d" % (config.protocol, config.seed)
    )
    for site in range(config.n_sites):
        for c in range(config.clients_per_site):
            session = backend.session(site)
            crng = random.Random(rng.random())
            procs.append(
                backend.kernel.spawn(
                    _client(backend, session, keys, crng, config.txs_per_client, errors),
                    name="pchaos.client:%s" % session.name,
                )
            )

    violations: List[Violation] = []
    lattice: Dict[str, List[Violation]] = {}
    try:
        backend.run(until=config.horizon)
        backend.heal_all()
        backend.network.loss_rate = 0.0
        deadline = config.horizon + DRAIN_GRACE
        backend.kernel.run(
            until=deadline, stop_when=lambda: all(p.done for p in procs)
        )
        if not all(p.done for p in procs):
            stuck = sorted(p.name for p in procs if not p.done)
            violations.append(
                Violation(
                    "liveness",
                    "clients not drained %.1fs past the horizon: %s"
                    % (DRAIN_GRACE, ", ".join(stuck)),
                )
            )
        else:
            backend.settle(config.settle)
            violations.extend(backend.check())
            lattice = backend.lattice_report()
    except Exception:  # noqa: BLE001 - a crash IS a failing verdict
        import traceback

        violations.append(
            Violation("exception", traceback.format_exc(limit=8).strip())
        )

    return ProtocolChaosResult(
        config=config,
        violations=violations,
        lattice=lattice,
        outcomes=backend.history.outcome_tally(),
        applied_faults=applied,
        client_errors=errors,
        end_time=backend.kernel.now,
        backend=backend,
    )


def protocol_config_from(config, protocol: str) -> ProtocolChaosConfig:
    """Adapt either harness config type to a :class:`ProtocolChaosConfig`
    (used by ``run_chaos(protocol=...)``)."""
    if isinstance(config, ProtocolChaosConfig):
        return replace(config, protocol=protocol)
    # A ChaosConfig from the Walter harness: map the shared knobs.  The
    # Walter deployment horizon is tuned for its heavier fault catalog;
    # the zoo harness keeps its own default settle.
    return ProtocolChaosConfig(
        protocol=protocol,
        seed=config.seed,
        n_sites=config.n_sites,
        fault_budget=config.fault_budget,
        clients_per_site=config.clients_per_site,
        txs_per_client=config.txs_per_client,
        n_keys=config.n_objects,
    )


__all__ = [
    "DRAIN_GRACE",
    "ProtocolChaosConfig",
    "ProtocolChaosResult",
    "generate_protocol_faults",
    "protocol_config_from",
    "run_protocol_chaos",
]
