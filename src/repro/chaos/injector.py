"""The fault injector: a simulated process that walks a schedule and
applies each fault to a live :class:`~repro.deployment.Deployment`.

Structural operations that are themselves multi-step protocols (site
removal, re-integration) are spawned as sub-processes -- the injector
does not block the rest of the schedule on them -- and ``reintegrate``
waits for any in-flight removal of the same site, so hand-written
schedules need not get the spacing exactly right.

Every applied fault bumps a ``chaos.faults{kind=...}`` counter and, when
tracing is on, lands on the transaction timeline as a ``fault`` span
under the pseudo-tid ``chaos``.  A fault whose preconditions do not hold
(e.g. replacing a server at a removed site) is recorded in
:attr:`FaultInjector.errors` rather than aborting the run: random
schedules may race their own structural operations, and the oracles --
not injection bookkeeping -- decide whether the run passed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..obs import FAULT
from .schedule import Schedule, canonical_json


class FaultInjector:
    """Applies a :class:`Schedule` against a deployment."""

    def __init__(self, world, schedule: Schedule):
        self.world = world
        self.schedule = schedule
        self.kernel = world.kernel
        self.errors: List[Tuple[str, str]] = []
        self.applied: List[str] = []
        self._proc = None
        self._ops: List = []  # structural sub-processes (remove/reintegrate)
        self._removals: Dict[int, object] = {}
        self._base_loss = world.network.loss_rate
        self._bursts: List[Tuple[float, float]] = []  # (rate, until)
        self._registry = world.obs.registry

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self):
        self.schedule.validate(self.world.n_sites)
        self._proc = self.kernel.spawn(self._run(), name="chaos.injector")
        return self._proc

    @property
    def done(self) -> bool:
        return (
            self._proc is not None
            and self._proc.done
            and all(op.done for op in self._ops)
        )

    def quiesce(self):
        """Generator: wait for the schedule walk and every structural
        sub-operation to finish."""
        if self._proc is not None and not self._proc.done:
            yield self._proc
        for op in list(self._ops):
            if not op.done:
                yield op

    def cancel_bursts(self) -> None:
        """Drop active loss bursts and restore the base loss rate (the
        harness repair phase must not fight injected loss)."""
        self._bursts = []
        self.world.network.loss_rate = self._base_loss

    def _run(self):
        for event in self.schedule.events:
            if event.at > self.kernel.now:
                yield self.kernel.timeout(event.at - self.kernel.now)
            self._apply(event)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _apply(self, event) -> None:
        handler = getattr(self, "_fault_" + event.fault)
        try:
            handler(**event.args)
        except Exception as exc:  # noqa: BLE001 - recorded, run continues
            self._note_error(event.fault, exc)
            return
        self.applied.append(event.fault)
        self._registry.counter("chaos.faults", kind=event.fault).inc()
        tracer = self.world.obs.tracer
        if tracer is not None:
            site = event.args.get("site", event.args.get("a", -1))
            tracer.record(
                "chaos",
                FAULT,
                site if isinstance(site, int) else -1,
                self.kernel.now,
                kind=event.fault,
                detail=canonical_json(event.args),
            )

    def _note_error(self, fault: str, exc: Exception) -> None:
        self.errors.append((fault, "%s: %s" % (type(exc).__name__, exc)))
        self._registry.counter("chaos.fault_errors", kind=fault).inc()

    def _spawn_op(self, gen, name: str):
        proc = self.kernel.spawn(gen, name=name)
        self._ops.append(proc)
        return proc

    # ------------------------------------------------------------------
    # Fault handlers
    # ------------------------------------------------------------------
    def _fault_crash(self, site: int) -> None:
        self.world.crash_server(site)

    def _fault_replace(self, site: int) -> None:
        if not self.world.config.is_active(site):
            raise RuntimeError("site %d is removed; use reintegrate" % site)
        if not self.world.network.is_crashed(self.world.addresses[site]):
            # Replacement implies the old server process is gone.
            self.world.crash_server(site)
        self.world.replace_server(site)

    def _fault_partition(self, a: int, b: int) -> None:
        self.world.network.partition(a, b)

    def _fault_heal(self, a: int, b: int) -> None:
        self.world.network.heal(a, b)

    def _fault_heal_all(self) -> None:
        self.world.network.heal_all()

    def _fault_loss_burst(self, rate: float, duration: float) -> None:
        until = self.kernel.now + duration
        self._bursts.append((rate, until))
        self._recompute_loss()
        self.kernel.call_at(until, self._recompute_loss)

    def _recompute_loss(self) -> None:
        now = self.kernel.now
        self._bursts = [(r, u) for r, u in self._bursts if u > now]
        active = [r for r, _u in self._bursts]
        self.world.network.loss_rate = max([self._base_loss] + active)

    def _fault_flush_stall(self, site: int, duration: float) -> None:
        self.world.storages[site].inject_flush_stall(duration)

    def _fault_prepare_reply_loss(self, site: int, duration: float) -> None:
        """The participant processes prepares (and locks!) but its YES/NO
        replies vanish -- the coordinator times out and counts a NO.
        This is the fault that leaks locks without commit-path leases."""
        if self.world.network.is_crashed(self.world.addresses[site]):
            raise RuntimeError("site %d is down; no replies to drop" % site)
        self.world.servers[site].drop_replies("prepare", duration)

    def _fault_handover(self, cid: str, to_site: int) -> None:
        self.world.config.container(cid)  # raises if unknown
        if not self.world.config.is_active(to_site):
            raise RuntimeError("handover target site %d is removed" % to_site)

        def op():
            try:
                yield from self.world.handover_container_gen(cid, to_site)
            except Exception as exc:  # noqa: BLE001
                self._note_error("handover", exc)

        self._spawn_op(op(), name="chaos.handover:%s" % cid)

    def _fault_migration_crash(self, cid: str, to_site: int, kill_after: float) -> None:
        """Start a preferred-site migration and kill the target mid-
        handover: the live fixture for the rollback path of
        ``Deployment.migrate_preferred_site`` -- the old site's lease must
        come back exactly once, with no window where both sites fast-
        commit the container.  The migration's timeout is recorded as an
        injection error (expected); the oracles judge the aftermath."""
        self.world.config.container(cid)  # raises if unknown
        if not self.world.config.is_active(to_site):
            raise RuntimeError("migration target site %d is removed" % to_site)

        def migrate():
            try:
                yield from self.world.migrate_preferred_site(cid, to_site, within=5.0)
            except Exception as exc:  # noqa: BLE001 - timeout is the point
                self._note_error("migration_crash", exc)

        def killer():
            yield self.kernel.timeout(kill_after)
            if self.world.config.is_active(to_site) and not self.world.network.is_crashed(
                self.world.addresses[to_site]
            ):
                self.world.crash_server(to_site)

        self._spawn_op(migrate(), name="chaos.migration:%s" % cid)
        self._spawn_op(killer(), name="chaos.migration_kill:%d" % to_site)

    def _fault_fail_site(self, site: int) -> None:
        if not self.world.config.is_active(site):
            raise RuntimeError("site %d already removed" % site)
        self.world.fail_site(site)

    def _fault_remove_site(self, site: int, reassign_to: int) -> None:
        if not self.world.config.is_active(site):
            raise RuntimeError("site %d already removed" % site)
        if not self.world.config.is_active(reassign_to):
            raise RuntimeError("reassign target %d is removed" % reassign_to)
        if not self.world.network.is_crashed(self.world.addresses[site]):
            self.world.fail_site(site)  # removal presumes the site failed

        def op():
            try:
                yield from self.world.remove_site_gen(site, reassign_to)
            except Exception as exc:  # noqa: BLE001
                self._note_error("remove_site", exc)

        self._removals[site] = self._spawn_op(op(), name="chaos.remove:%d" % site)

    def _fault_reintegrate(self, site: int) -> None:
        def op():
            removal = self._removals.get(site)
            if removal is not None and not removal.done:
                yield removal  # let the removal finish first
            if self.world.config.is_active(site):
                self._note_error(
                    "reintegrate", RuntimeError("site %d is already active" % site)
                )
                return
            try:
                yield from self.world.reintegrate_site_gen(site)
            except Exception as exc:  # noqa: BLE001
                self._note_error("reintegrate", exc)

        self._spawn_op(op(), name="chaos.reintegrate:%d" % site)
