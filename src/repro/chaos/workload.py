"""Randomized client workload for chaos runs.

Mirrors the op mix of the PSI property tests (reads, writes, cset
add/del over objects spread across per-site containers), but built for a
hostile environment: every operation can raise -- RPC timeouts when the
client's home server is crashed, removed, or partitioned -- and the loop
records the error and moves on to the next transaction with a fresh
handle.  All randomness comes from streams derived from the chaos seed,
so the operation sequence each client *attempts* is a pure function of
the config (what *commits* additionally depends on the schedule, which
is equally deterministic).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from ..core.objects import ObjectKind
from ..sim.rand import derive_seed

#: Outcome labels recorded per attempted transaction.
COMMITTED = "COMMITTED"
ABORTED = "ABORTED"
ERROR = "ERROR"


@dataclass
class WorkloadHandle:
    """The spawned client processes plus their outcome tallies."""

    procs: List = field(default_factory=list)
    outcomes: List[List[str]] = field(default_factory=list)

    @property
    def done(self) -> bool:
        # Read the Process._done slot directly: this property sits in the
        # chaos harness's per-event stop_when check.
        for p in self.procs:
            if not p._done:
                return False
        return True

    def tally(self) -> Dict[str, int]:
        counts = {COMMITTED: 0, ABORTED: 0, ERROR: 0}
        for outcome_list in self.outcomes:
            for status in outcome_list:
                counts[status] = counts.get(status, 0) + 1
        return counts


def make_objects(world, config):
    """One container per *logical* site (``c0``..``c{n-1}``, preferred
    there -- ``world.n_sites`` counts shard servers when the config
    shards), and the object/cset ids spread over them -- the layout the
    schedule generator's ``handover`` fault assumes."""
    n = world.n_sites
    for site in range(n):
        world.create_container("c%d" % site, preferred_site=site)
    rng = random.Random(derive_seed(config.seed, "chaos.objects"))
    oids = [
        world.config.container("c%d" % rng.randrange(n)).new_id()
        for _ in range(config.n_objects)
    ]
    csets = [
        world.config.container("c%d" % rng.randrange(n)).new_id(ObjectKind.CSET)
        for _ in range(config.n_csets)
    ]
    return oids, csets


def start_workload(world, config, oids, csets) -> WorkloadHandle:
    """Spawn ``clients_per_site`` client loops at every logical site."""
    handle = WorkloadHandle()
    for site in range(world.n_sites):
        for c in range(config.clients_per_site):
            client = world.new_client(site, name="chaos-client-%d-%d" % (site, c))
            crng = random.Random(derive_seed(config.seed, "chaos.client.%d.%d" % (site, c)))
            outcomes: List[str] = []
            handle.outcomes.append(outcomes)
            handle.procs.append(
                world.kernel.spawn(
                    _client_loop(client, crng, config, oids, csets, outcomes),
                    name="chaos.workload:%d.%d" % (site, c),
                )
            )
    return handle


def _client_loop(client, crng, config, oids, csets, outcomes):
    for _ in range(config.txs_per_client):
        yield client.kernel.timeout(crng.random() * 0.05)
        tx = client.start_tx()
        try:
            for _op in range(crng.randint(1, 4)):
                kind = crng.random()
                if kind < 0.45:
                    yield from client.read(tx, crng.choice(oids))
                elif kind < 0.75:
                    yield from client.write(
                        tx, crng.choice(oids), ("%s" % crng.random()).encode()
                    )
                elif kind < 0.9:
                    yield from client.set_add(tx, crng.choice(csets), crng.randrange(5))
                else:
                    yield from client.set_del(tx, crng.choice(csets), crng.randrange(5))
            outcomes.append((yield from client.commit(tx)))
        except Exception:  # noqa: BLE001 - faults make any op fallible
            outcomes.append(ERROR)
    return outcomes
