"""Greedy schedule shrinking (ddmin-lite).

Given a failing ``(config, schedule)``, repeatedly try deleting chunks
of events -- halving the chunk size as deletions stop helping -- and
keep any candidate that still fails.  Every candidate run is itself a
full deterministic chaos run, so the result is a *locally minimal*
failing schedule: removing any single remaining event (at the final
granularity) makes the failure disappear.

Pair-structured faults need no special casing: a candidate that drops
``remove_site`` but keeps ``reintegrate`` simply records an injection
error and keeps running, and the oracles decide whether it still fails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from .harness import ChaosConfig, ChaosResult, run_chaos
from .schedule import FaultEvent, Schedule


@dataclass
class ShrinkReport:
    """The minimized schedule plus how much work finding it took."""

    schedule: Schedule
    result: ChaosResult  # the failing run of the minimized schedule
    runs: int
    initial_events: int

    @property
    def final_events(self) -> int:
        return len(self.schedule)


def shrink_schedule(
    config: ChaosConfig,
    schedule: Schedule,
    max_runs: int = 48,
    still_fails: Optional[Callable[[ChaosResult], bool]] = None,
) -> ShrinkReport:
    """Minimize ``schedule`` while ``still_fails(run_chaos(...))`` holds.

    The default predicate is "any oracle violation".  ``max_runs`` bounds
    the total number of candidate runs (each is a full simulation).
    """
    if still_fails is None:
        still_fails = lambda result: not result.passed  # noqa: E731

    runs = 0
    events: List[FaultEvent] = list(schedule.events)
    best = run_chaos(config, schedule=Schedule(list(events)))
    runs += 1
    if still_fails(best) is False:
        raise ValueError("shrink_schedule called with a passing schedule")

    chunk = max(1, len(events) // 2)
    while chunk >= 1 and runs < max_runs:
        i = 0
        while i < len(events) and runs < max_runs:
            candidate = events[:i] + events[i + chunk:]
            result = run_chaos(config, schedule=Schedule(list(candidate)))
            runs += 1
            if still_fails(result):
                events = candidate
                best = result  # same position now holds the next chunk
            else:
                i += chunk
        if chunk == 1:
            break
        chunk = max(1, chunk // 2)

    return ShrinkReport(
        schedule=Schedule(list(events)),
        result=best,
        runs=runs,
        initial_events=len(schedule),
    )
