"""Deterministic chaos harness: seeded fault schedules + model-checked
PSI under failures.

Quickstart::

    PYTHONPATH=src python -m repro.chaos --seed 1 --runs 10

Programmatic::

    from repro.chaos import ChaosConfig, run_chaos
    result = run_chaos(ChaosConfig(seed=1))
    assert result.passed, result.verdict_json()

See DESIGN.md §"Chaos testing" for the schedule DSL, the oracles, and
the shrink/artifact workflow.
"""

from .generator import generate_schedule
from .harness import (
    ChaosConfig,
    ChaosResult,
    ReproArtifact,
    run_batch,
    run_chaos,
)
from .injector import FaultInjector
from .oracles import check_convergence, check_durability
from .protocols import (
    ProtocolChaosConfig,
    ProtocolChaosResult,
    run_protocol_chaos,
)
from .schedule import FAULT_CATALOG, FaultEvent, Schedule, ScheduleError, canonical_json
from .shrinker import ShrinkReport, shrink_schedule

__all__ = [
    "FAULT_CATALOG",
    "ChaosConfig",
    "ChaosResult",
    "FaultEvent",
    "FaultInjector",
    "ProtocolChaosConfig",
    "ProtocolChaosResult",
    "ReproArtifact",
    "Schedule",
    "ScheduleError",
    "ShrinkReport",
    "canonical_json",
    "check_convergence",
    "check_durability",
    "generate_schedule",
    "run_batch",
    "run_chaos",
    "run_protocol_chaos",
    "shrink_schedule",
]
