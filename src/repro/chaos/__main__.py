"""CLI for the chaos harness.

Run a batch of seeded chaos experiments; on the first failure, shrink
the schedule and write a reproduction artifact (seed + shrunk schedule
as canonical JSON) next to the working directory, then exit non-zero.

With ``--corpus DIR`` it instead replays every stored reproduction
artifact (``seed-*.json``) in that directory and verifies the run still
passes every oracle -- including the ``no-leaked-locks`` /
``no-stuck-transactions`` quiescence oracles -- with a byte-identical
verdict.  CI runs this over ``tests/chaos/seeds``.

Examples::

    PYTHONPATH=src python -m repro.chaos --seed 1
    PYTHONPATH=src python -m repro.chaos --seed 100 --runs 25 --budget 8
    PYTHONPATH=src python -m repro.chaos --seed 1 --bug skip_resume_propagation
    PYTHONPATH=src python -m repro.chaos --corpus tests/chaos/seeds
"""

from __future__ import annotations

import argparse
import glob
import os
import sys
from dataclasses import replace

from .harness import ChaosConfig, ReproArtifact, run_chaos
from .schedule import canonical_json
from .shrinker import shrink_schedule


def replay_corpus(directory: str) -> int:
    """Replay every stored artifact; fail on any oracle violation or
    verdict drift (mismatched bytes mean determinism broke)."""
    paths = sorted(glob.glob(os.path.join(directory, "seed-*.json")))
    if not paths:
        print("no seed-*.json artifacts under %s" % directory, file=sys.stderr)
        return 1
    failed = 0
    for path in paths:
        artifact = ReproArtifact.load(path)
        result = artifact.replay()
        fresh = result.verdict_obj()
        ok = result.passed and fresh == artifact.verdict
        print(
            "%s: %s  locks=%d active_txs=%d"
            % (
                os.path.basename(path),
                "PASS" if ok else "FAIL",
                sum(len(s.locked) for s in result.world.servers),
                sum(len(s._txs) for s in result.world.servers),
            )
        )
        if not ok:
            failed += 1
            for violation in result.violations:
                print("  %s" % violation)
            if fresh != artifact.verdict:
                print("  verdict drift:\n    stored: %s\n    fresh:  %s"
                      % (canonical_json(artifact.verdict), canonical_json(fresh)))
    return 1 if failed else 0


def run_protocol_batch(args) -> int:
    """Run the protocol-zoo harness for each seed; fail on the first
    verdict with oracle or lattice violations."""
    from .protocols import ProtocolChaosConfig, run_protocol_chaos

    for seed in range(args.seed, args.seed + args.runs):
        config = ProtocolChaosConfig(
            protocol=args.protocol,
            seed=seed,
            n_sites=args.sites,
            fault_budget=args.budget,
        )
        result = run_protocol_chaos(config)
        tally = result.outcomes
        print(
            "%s seed %d: %s  faults=%d committed=%d aborted=%d errors=%d  t=%.2fs"
            % (
                args.protocol,
                seed,
                "PASS" if result.passed else "FAIL",
                len(result.applied_faults),
                tally.get("COMMITTED", 0),
                tally.get("ABORTED", 0),
                tally.get("ERROR", 0),
                result.end_time,
            )
        )
        if result.passed:
            continue
        for violation in result.violations:
            print("  %s" % violation)
        for level, violations in sorted(result.lattice.items()):
            for violation in violations:
                print("  [lattice:%s] %s" % (level, violation))
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="seeded fault-injection runs checked against the PSI model",
    )
    parser.add_argument("--seed", type=int, default=1, help="first seed (default 1)")
    parser.add_argument("--runs", type=int, default=1, help="number of seeds to run")
    parser.add_argument("--sites", type=int, default=3, help="sites in the deployment")
    parser.add_argument(
        "--shards", type=int, default=1,
        help="keyspace shards per site (each a full logical site)",
    )
    parser.add_argument(
        "--replication", type=int, default=None,
        help="base sites replicating each shard group (default: all)",
    )
    parser.add_argument("--budget", type=int, default=6, help="fault budget per schedule")
    parser.add_argument("--horizon", type=float, default=8.0, help="fault window (sim s)")
    parser.add_argument(
        "--batching", action="store_true",
        help="run with the hot-path batching layer on (DESIGN.md §14); "
        "PSI verdicts must be independent of it",
    )
    parser.add_argument(
        "--bug",
        default=None,
        help="plant a deliberate bug (harness self-test); see RecoveryMixin.CHAOS_BUGS",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="failure artifact path (default chaos-repro-<seed>.json)",
    )
    parser.add_argument(
        "--shrink-runs", type=int, default=48, help="max candidate runs while shrinking"
    )
    parser.add_argument(
        "--corpus",
        default=None,
        help="replay every seed-*.json artifact in this directory instead "
        "of generating runs; fail on any violation or verdict drift",
    )
    parser.add_argument(
        "--protocol",
        default=None,
        help="run the protocol-zoo harness against this registry backend "
        "(walter, si, nmsi, consus) instead of the full Walter deployment; "
        "the run is judged by the protocol's own oracle + lattice report",
    )
    args = parser.parse_args(argv)

    if args.corpus is not None:
        return replay_corpus(args.corpus)

    if args.protocol is not None:
        return run_protocol_batch(args)

    base = ChaosConfig(
        seed=args.seed,
        n_sites=args.sites,
        fault_budget=args.budget,
        horizon=args.horizon,
        bug=args.bug,
        shards=args.shards,
        replication=args.replication,
        batching=args.batching,
    )
    for seed in range(args.seed, args.seed + args.runs):
        config = replace(base, seed=seed)
        result = run_chaos(config)
        tally = result.outcomes
        print(
            "seed %d: %s  faults=%d committed=%d aborted=%d errors=%d  t=%.2fs"
            % (
                seed,
                "PASS" if result.passed else "FAIL",
                len(result.applied_faults),
                tally.get("COMMITTED", 0),
                tally.get("ABORTED", 0),
                tally.get("ERROR", 0),
                result.end_time,
            )
        )
        if result.passed:
            continue
        for violation in result.violations:
            print("  %s" % violation)
        print("shrinking schedule (%d events)..." % len(result.schedule))
        report = shrink_schedule(config, result.schedule, max_runs=args.shrink_runs)
        print(
            "  %d -> %d events in %d runs"
            % (report.initial_events, report.final_events, report.runs)
        )
        out = args.out or ("chaos-repro-%d.json" % seed)
        report.result.artifact().save(out)
        print("  wrote %s  (replay: ReproArtifact.load(path).replay())" % out)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
