"""Fault-schedule DSL for the deterministic chaos harness.

A schedule is a time-ordered list of ``(sim_time, fault, args)`` events
drawn from a fixed catalog.  Schedules are plain data: they serialize to
canonical JSON (sorted keys, no whitespace), so the same schedule always
produces byte-identical artifacts -- the property the failing-seed
reproduction workflow relies on.

The catalog mirrors the failure model of paper §5.7 plus the usual
network/disk gremlins:

======================  ======================================================
``crash``               kill the Walter server process at ``site``
``replace``             start a replacement server over the site's storage
``partition``           sever links between sites ``a`` and ``b``
``heal``                restore links between sites ``a`` and ``b``
``heal_all``            restore every link
``loss_burst``          random message loss at ``rate`` for ``duration``
``flush_stall``         hold WAL flushes at ``site`` for ``duration``
``prepare_reply_loss``  drop ``site``'s prepare replies for ``duration``
``handover``            move container ``cid``'s preferred site to ``to_site``
``migration_crash``     start a handover of ``cid`` to ``to_site``, then crash
                        the target ``kill_after`` seconds in (rollback fixture)
``fail_site``           whole-site failure: server down, links severed
``remove_site``         aggressive removal (§4.4), reassign to ``reassign_to``
``reintegrate``         bring a removed site back (§5.7)
======================  ======================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

#: fault name -> (required argument names, which of them are site ids)
FAULT_CATALOG: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    "crash": (("site",), ("site",)),
    "replace": (("site",), ("site",)),
    "partition": (("a", "b"), ("a", "b")),
    "heal": (("a", "b"), ("a", "b")),
    "heal_all": ((), ()),
    "loss_burst": (("rate", "duration"), ()),
    "flush_stall": (("site", "duration"), ("site",)),
    "prepare_reply_loss": (("site", "duration"), ("site",)),
    "handover": (("cid", "to_site"), ("to_site",)),
    "migration_crash": (("cid", "to_site", "kill_after"), ("to_site",)),
    "fail_site": (("site",), ("site",)),
    "remove_site": (("site", "reassign_to"), ("site", "reassign_to")),
    "reintegrate": (("site",), ("site",)),
}


def canonical_json(obj: Any) -> str:
    """The one serialization used for schedules and artifacts: stable
    across runs and platforms, so equal values are equal bytes."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass
class FaultEvent:
    """One scheduled fault: inject ``fault(**args)`` at sim time ``at``."""

    at: float
    fault: str
    args: Dict[str, Any] = field(default_factory=dict)

    def to_obj(self) -> Dict[str, Any]:
        return {"at": self.at, "fault": self.fault, "args": dict(self.args)}

    @classmethod
    def from_obj(cls, obj: Dict[str, Any]) -> "FaultEvent":
        return cls(at=float(obj["at"]), fault=obj["fault"], args=dict(obj["args"]))

    def _sort_key(self):
        return (self.at, self.fault, canonical_json(self.args))


class ScheduleError(ValueError):
    """A schedule failed validation against the fault catalog."""


@dataclass
class Schedule:
    """A validated, time-sorted fault schedule."""

    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self):
        self.events = sorted(self.events, key=FaultEvent._sort_key)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def validate(self, n_sites: int) -> None:
        """Check every event against :data:`FAULT_CATALOG` (unknown
        faults, missing/extra args, out-of-range sites, bad rates)."""
        for event in self.events:
            if event.at < 0:
                raise ScheduleError("event time %r < 0" % (event.at,))
            spec = FAULT_CATALOG.get(event.fault)
            if spec is None:
                raise ScheduleError("unknown fault %r" % (event.fault,))
            required, site_args = spec
            if set(event.args) != set(required):
                raise ScheduleError(
                    "%s needs args %r, got %r"
                    % (event.fault, sorted(required), sorted(event.args))
                )
            for name in site_args:
                site = event.args[name]
                if not isinstance(site, int) or not (0 <= site < n_sites):
                    raise ScheduleError(
                        "%s.%s=%r is not a site id in [0, %d)"
                        % (event.fault, name, site, n_sites)
                    )
            if event.fault in ("partition", "heal") and event.args["a"] == event.args["b"]:
                raise ScheduleError("%s with a == b == %r" % (event.fault, event.args["a"]))
            if event.fault == "remove_site" and event.args["site"] == event.args["reassign_to"]:
                raise ScheduleError("remove_site reassigns to the removed site")
            if event.fault == "loss_burst" and not (0.0 <= event.args["rate"] <= 1.0):
                raise ScheduleError("loss_burst rate %r not in [0, 1]" % (event.args["rate"],))
            if "duration" in event.args and event.args["duration"] < 0:
                raise ScheduleError("%s duration < 0" % (event.fault,))

    # ------------------------------------------------------------------
    # Canonical (de)serialization
    # ------------------------------------------------------------------
    def to_obj(self) -> Dict[str, Any]:
        return {"events": [e.to_obj() for e in self.events]}

    def to_json(self) -> str:
        return canonical_json(self.to_obj())

    @classmethod
    def from_obj(cls, obj: Dict[str, Any]) -> "Schedule":
        return cls(events=[FaultEvent.from_obj(e) for e in obj["events"]])

    @classmethod
    def from_json(cls, text: str) -> "Schedule":
        return cls.from_obj(json.loads(text))
