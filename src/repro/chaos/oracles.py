"""Convergence and durability oracles for chaos runs.

:func:`check_trace` validates the three PSI safety properties from the
recorded trace alone.  These oracles add what a trace cannot see -- the
final *server state* after faults and repair:

* **Convergence**: once the network is healed and propagation has
  settled, every active site agrees on the committed frontier, and every
  replicating site returns the same value for every object at that
  frontier (paper §4: all sites eventually agree on the committed state).

* **Durability**: no transaction that committed somewhere is lost --
  every active site's ``CommittedVTS`` covers it -- unless §4.4's
  aggressive removal (or §5.7 storage fencing at a takeover) explicitly
  sacrificed it, in which case the deployment recorded it in
  ``abandoned_versions``.

* **Quiescence**: after repair and settle, no server still holds a
  prepare lock (``no-leaked-locks``) or an active transaction
  (``no-stuck-transactions``).  Workload clients abandon transactions
  when an operation errors out, and a 2PC whose replies were lost can
  strand participant locks; the lease sweeper (DESIGN.md §9) must have
  cleaned both up, or one crashed client degrades its objects forever.

All return the checker's :class:`~repro.spec.checker.Violation` type so
the harness can merge all findings into one verdict.
"""

from __future__ import annotations

from typing import List

from ..core.objects import ObjectKind
from ..spec.checker import Violation


def check_convergence(world) -> List[Violation]:
    """All active sites agree on the committed frontier and on every
    object's value at that frontier."""
    violations: List[Violation] = []
    active = sorted(world.config.active_sites())
    if not active:
        return [Violation("convergence", "no active sites remain")]
    frontiers = {site: tuple(world.servers[site].committed_vts) for site in active}
    reference_site = active[0]
    reference = frontiers[reference_site]
    for site in active[1:]:
        if frontiers[site] != reference:
            violations.append(
                Violation(
                    "convergence",
                    "committed frontier diverges: site %d has %r, site %d has %r"
                    % (reference_site, reference, site, frontiers[site]),
                )
            )
    if violations:
        return violations  # value comparison at unequal frontiers is noise

    oids = sorted(
        {oid for site in active for oid in world.servers[site].histories.known_oids()},
        key=str,
    )
    for oid in oids:
        seen = []
        for site in active:
            if not world.config.replicated_at(oid, site):
                continue
            server = world.servers[site]
            if oid.kind is ObjectKind.CSET:
                value = server.histories.read_cset(oid, server.committed_vts).counts()
            else:
                value = server.histories.read_regular(oid, server.committed_vts)
            seen.append((site, value))
        for site, value in seen[1:]:
            if value != seen[0][1]:
                violations.append(
                    Violation(
                        "convergence",
                        "%s diverges at the committed frontier: site %d has %r, site %d has %r"
                        % (oid, seen[0][0], seen[0][1], site, value),
                    )
                )
    return violations


def check_quiescence(world) -> List[Violation]:
    """No leaked prepare locks and no stuck transactions at quiesce."""
    violations: List[Violation] = []
    for site in sorted(world.config.active_sites()):
        server = world.servers[site]
        for oid, tid in sorted(server.locked.items(), key=lambda kv: str(kv[0])):
            violations.append(
                Violation(
                    "no-leaked-locks",
                    "site %d still holds a prepare lock on %s for %s at quiesce"
                    % (site, oid, tid),
                )
            )
        for tid in sorted(server._txs):
            violations.append(
                Violation(
                    "no-stuck-transactions",
                    "site %d still has active transaction %s at quiesce "
                    "(pins the GC watermark at %r)"
                    % (site, tid, tuple(server._txs[tid].start_vts)),
                )
            )
    return violations


def check_durability(world) -> List[Violation]:
    """Every committed transaction in the trace is committed at every
    active site, except those §4.4/§5.7 legitimately abandoned."""
    if world.trace is None:
        raise ValueError("durability oracle needs Deployment(trace=True)")
    violations: List[Violation] = []
    active = sorted(world.config.active_sites())
    abandoned = world.abandoned_versions
    for tid in sorted(world.trace.transactions):
        tx = world.trace.transactions[tid]
        if tx.version in abandoned:
            continue
        for site in active:
            committed = world.servers[site].committed_vts
            if committed[tx.version.site] < tx.version.seqno:
                violations.append(
                    Violation(
                        "durability",
                        "%s (version %s) committed but is not covered at site %d "
                        "(committed frontier %r)" % (tid, tx.version, site, tuple(committed)),
                    )
                )
    return violations
