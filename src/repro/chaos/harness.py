"""The chaos run loop: workload + fault schedule + repair + oracles.

One :func:`run_chaos` call is one experiment:

1. build a traced :class:`~repro.deployment.Deployment` from the config
   seed, plus the randomized client workload;
2. let the :class:`~repro.chaos.injector.FaultInjector` walk the
   schedule (generated from the same seed unless one is supplied) while
   the clients run;
3. **repair**: once the schedule is exhausted, heal all partitions,
   cancel loss bursts, replace any crashed servers, and re-integrate any
   still-removed sites -- the oracles judge the *converged* system, not
   the mid-outage one;
4. **judge**: feed the recorded trace to the PSI checker (in dual-world
   mode, excusing §4.4-abandoned transactions) and run the convergence,
   durability, and liveness oracles.

Everything is a deterministic function of ``(config, schedule)``: two
runs with the same seed produce byte-identical schedules, verdicts, and
failure artifacts.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from ..deployment import Deployment
from ..obs import OnlineMonitor
from ..sim import gc_paused
from ..spec.checker import Violation, check_trace
from ..storage import FLUSH_MEMORY
from .generator import generate_schedule
from .injector import FaultInjector
from .oracles import check_convergence, check_durability, check_quiescence
from .schedule import Schedule, canonical_json
from .workload import make_objects, start_workload

#: Extra sim-time allowed past the horizon for repair + draining client
#: timeouts before a run is declared non-live.  Client op timeouts are a
#: few seconds; removal/re-integration a few RPC rounds each.
REPAIR_GRACE = 300.0


@dataclass(frozen=True)
class ChaosConfig:
    """Everything that determines a chaos run (besides an explicit
    schedule override).  Frozen: configs are dict keys in test corpora."""

    seed: int
    n_sites: int = 3
    horizon: float = 8.0
    fault_budget: int = 6
    clients_per_site: int = 2
    txs_per_client: int = 10
    n_objects: int = 6
    n_csets: int = 2
    flush_latency: float = FLUSH_MEMORY
    settle: float = 6.0
    #: Deliberate-bug name (see RecoveryMixin.CHAOS_BUGS); self-test only.
    bug: Optional[str] = None
    #: Intra-site keyspace shards per base site (DESIGN.md §13).  The
    #: deployment then runs ``n_sites * shards`` logical sites, and
    #: workload/faults target the logical ids.  Defaults keep stored
    #: corpus configs (which predate sharding) loading unchanged.
    shards: int = 1
    #: Per-shard replication factor (base sites per shard group); None =
    #: full replication.
    replication: Optional[int] = None
    #: Run with the hot-path batching layer on (DESIGN.md §14): WAL
    #: group-commit window, encoded propagation batches, read
    #: coalescing.  Default off keeps stored corpus configs (which
    #: predate batching) replaying byte-identically.
    batching: bool = False

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "n_sites": self.n_sites,
            "horizon": self.horizon,
            "fault_budget": self.fault_budget,
            "clients_per_site": self.clients_per_site,
            "txs_per_client": self.txs_per_client,
            "n_objects": self.n_objects,
            "n_csets": self.n_csets,
            "flush_latency": self.flush_latency,
            "settle": self.settle,
            "bug": self.bug,
            "shards": self.shards,
            "replication": self.replication,
            "batching": self.batching,
        }

    @classmethod
    def from_dict(cls, obj: Dict[str, Any]) -> "ChaosConfig":
        return cls(**obj)


@dataclass
class ChaosResult:
    """Outcome of one chaos run."""

    config: ChaosConfig
    schedule: Schedule
    violations: List[Violation] = field(default_factory=list)
    outcomes: Dict[str, int] = field(default_factory=dict)
    applied_faults: List[str] = field(default_factory=list)
    injection_errors: List[Tuple[str, str]] = field(default_factory=list)
    end_time: float = 0.0
    world: Any = None  # the Deployment, for post-mortem inspection
    #: The OnlineMonitor when the run was monitored (run_chaos
    #: ``monitor=True``); excluded from the verdict so monitored and
    #: unmonitored runs stay byte-identical.
    monitor: Any = None

    @property
    def passed(self) -> bool:
        return not self.violations

    def verdict_obj(self) -> Dict[str, Any]:
        """Canonical, JSON-able verdict -- byte-identical across runs of
        the same (config, schedule)."""
        return {
            "passed": self.passed,
            "violations": [
                {"property": v.property_name, "detail": v.detail}
                for v in self.violations
            ],
            "outcomes": dict(sorted(self.outcomes.items())),
            "applied_faults": list(self.applied_faults),
            "injection_errors": [list(e) for e in self.injection_errors],
            "end_time": round(self.end_time, 9),
        }

    def verdict_json(self) -> str:
        return canonical_json(self.verdict_obj())

    def artifact(self) -> "ReproArtifact":
        return ReproArtifact(
            config=self.config, schedule=self.schedule, verdict=self.verdict_obj()
        )


@dataclass
class ReproArtifact:
    """A self-contained reproduction recipe: config + schedule + the
    verdict they produced.  Check the JSON into ``tests/chaos/seeds/``
    and the replay test will keep the bug (or its fix) pinned."""

    config: ChaosConfig
    schedule: Schedule
    verdict: Dict[str, Any]

    def to_json(self) -> str:
        return canonical_json(
            {
                "config": self.config.as_dict(),
                "schedule": self.schedule.to_obj(),
                "verdict": self.verdict,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "ReproArtifact":
        import json

        obj = json.loads(text)
        return cls(
            config=ChaosConfig.from_dict(obj["config"]),
            schedule=Schedule.from_obj(obj["schedule"]),
            verdict=obj["verdict"],
        )

    def save(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path) -> "ReproArtifact":
        with open(path) as fh:
            return cls.from_json(fh.read())

    def replay(self) -> ChaosResult:
        """Re-run the recorded config + schedule; returns the fresh result
        (compare its ``verdict_obj()`` with the stored one)."""
        return run_chaos(self.config, schedule=self.schedule)


def run_chaos(
    config: ChaosConfig,
    schedule: Optional[Schedule] = None,
    monitor: bool = False,
    protocol: Optional[str] = None,
) -> "ChaosResult":
    """Run one chaos experiment; see the module docstring.

    ``protocol=<name>`` dispatches to the protocol-zoo harness
    (:mod:`repro.chaos.protocols`) instead: the named registry backend
    ("walter", "si", "nmsi", "consus") runs a seeded workload under
    partitions/loss and is judged by its *own* oracle plus the
    inclusion-lattice report.  ``protocol=None`` (the default) is the
    original full Walter-deployment harness, byte-identical to before
    the zoo existed.  ``schedule``/``monitor`` apply only to the
    deployment harness.

    ``monitor=True`` attaches an :class:`~repro.obs.OnlineMonitor` (and
    the span tracing that feeds it).  The monitor is passive -- it
    creates no kernel events -- so a monitored run produces the
    byte-identical verdict of an unmonitored one; its alerts are
    returned on ``ChaosResult.monitor``.

    The whole experiment -- world construction, the fault run, repair,
    settling, and the oracle checks -- executes with the cyclic GC paused
    (:func:`repro.sim.gc_paused`): the run/spawn/run structure would
    otherwise trigger a full young-generation scan at every run boundary.
    """
    if protocol is not None:
        if schedule is not None or monitor:
            raise ValueError(
                "schedule/monitor are deployment-harness options; "
                "protocol=%r runs use the protocol-zoo harness" % protocol
            )
        from .protocols import protocol_config_from, run_protocol_chaos

        with gc_paused():
            return run_protocol_chaos(protocol_config_from(config, protocol))
    with gc_paused():
        return _run_chaos(config, schedule, monitor)


def _run_chaos(
    config: ChaosConfig, schedule: Optional[Schedule], monitor: bool = False
) -> ChaosResult:
    if schedule is None:
        schedule = generate_schedule(config)
    world = Deployment(
        n_sites=config.n_sites,
        flush_latency=config.flush_latency,
        seed=config.seed,
        trace=True,
        jitter_frac=0.10,
        lease_sweeper=True,
        tracing=bool(monitor),
        shards=config.shards,
        replication=config.replication,
        batching=True if config.batching else None,
    )
    world.chaos_bug = config.bug
    online = OnlineMonitor(world) if monitor else None
    oids, csets = make_objects(world, config)
    injector = FaultInjector(world, schedule)
    injector.start()
    workload = start_workload(world, config, oids, csets)

    violations: List[Violation] = []
    repair_proc = None
    deadline = config.horizon + REPAIR_GRACE
    try:
        world.run(until=config.horizon)
        repair_proc = world.kernel.spawn(
            _repair(world, injector), name="chaos.repair"
        )
        # stop_when runs before every event; the conjunction is evaluated
        # cheapest-first (repair is a single process flag, workload.done
        # walks every client process) -- the stop time is unaffected.
        # repair_proc._done reads the slot directly, skipping the property
        # call this per-event check would otherwise pay.
        world.kernel.run(
            until=deadline,
            stop_when=lambda: repair_proc._done and injector.done and workload.done,
        )
    except Exception:  # noqa: BLE001 - a crash IS a failing verdict
        violations.append(
            Violation("exception", traceback.format_exc(limit=8).strip())
        )

    if not violations:
        if not (workload.done and repair_proc.done and injector.done):
            stuck = [
                p.name
                for p in workload.procs + [repair_proc, injector._proc] + injector._ops
                if p is not None and not p.done
            ]
            violations.append(
                Violation(
                    "liveness",
                    "not quiescent %.1fs past the horizon: %s"
                    % (REPAIR_GRACE, ", ".join(sorted(stuck))),
                )
            )
        else:
            try:
                world.settle(config.settle)
                violations.extend(
                    check_trace(world.trace, abandoned=world.abandoned_versions)
                )
                violations.extend(check_convergence(world))
                violations.extend(check_durability(world))
                violations.extend(check_quiescence(world))
            except Exception:  # noqa: BLE001
                violations.append(
                    Violation("exception", traceback.format_exc(limit=8).strip())
                )

    if online is not None:
        # One last evaluation over the settled world: healed breaches
        # resolve, planted-bug breaches stay active.
        online.finalize(world.kernel.now)

    return ChaosResult(
        config=config,
        schedule=schedule,
        violations=violations,
        outcomes=workload.tally(),
        applied_faults=list(injector.applied),
        injection_errors=list(injector.errors),
        end_time=world.kernel.now,
        world=world,
        monitor=online,
    )


def _repair(world, injector):
    """Put the deployment back together so the convergence/durability
    oracles judge a healed system."""
    yield from injector.quiesce()
    injector.cancel_bursts()
    world.network.heal_all()
    for site in world.config.active_sites():
        if world.network.is_crashed(world.addresses[site]):
            world.replace_server(site)
    for site in range(world.n_sites):
        if not world.config.is_active(site):
            yield from world.reintegrate_site_gen(site)


def run_batch(
    seeds, base: Optional[ChaosConfig] = None, **overrides
) -> List[ChaosResult]:
    """Run one chaos experiment per seed (used by the CLI and CI smoke)."""
    base = base or ChaosConfig(seed=0)
    return [run_chaos(replace(base, seed=seed, **overrides)) for seed in seeds]
