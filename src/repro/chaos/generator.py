"""Random fault-schedule generation, parameterized by a fault budget.

Faults are not sprinkled uniformly: structural faults that must pair up
to leave the system repairable -- crash/replace, partition/heal, and the
full §5.7 outage sequence (fail, aggressive removal, re-integration) --
are placed as *scenarios* inside disjoint time windows, so one scenario's
repair RPCs are not wrecked by the next scenario's partition.  Light
faults (message-loss bursts, WAL flush stalls, preferred-site handovers)
land anywhere.

Generation draws only on :class:`~repro.chaos.harness.ChaosConfig` (never
on simulation state) from a stream derived from the config seed, so the
same config always yields the byte-identical schedule.
"""

from __future__ import annotations

import random
from typing import List

from ..sim.rand import derive_seed
from .schedule import FaultEvent, Schedule

#: Single-event faults a budget point buys directly.
LIGHT_FAULTS = ("loss_burst", "flush_stall", "handover")

#: Minimum window (seconds) a full site outage needs: removal is several
#: coordinator RPC rounds, and re-integration several more.
MIN_OUTAGE_WINDOW = 2.5


def generate_schedule(config) -> Schedule:
    """Spend ``config.fault_budget`` points on scenarios (site outage
    costs 3, crash/replace and partition/heal cost 2, light faults 1)
    and lay them out over ``[0.05, 0.95] * horizon``."""
    rng = random.Random(derive_seed(config.seed, "chaos.schedule"))
    # Faults target *logical* sites: a sharded config (shards > 1) runs
    # n_sites * shards shard servers, and every one is fair game.  At
    # shards=1 this is exactly config.n_sites, so unsharded schedules
    # are unchanged.
    n = config.n_sites * getattr(config, "shards", 1)
    horizon = config.horizon
    structural: List[str] = []
    light: List[str] = []
    remaining = max(0, config.fault_budget)
    while remaining > 0:
        roll = rng.random()
        if n >= 2 and remaining >= 3 and roll < 0.20:
            structural.append("site_outage")
            remaining -= 3
        elif remaining >= 2 and roll < 0.50:
            structural.append("crash_replace")
            remaining -= 2
        elif n >= 2 and remaining >= 2 and roll < 0.70:
            structural.append("partition_heal")
            remaining -= 2
        else:
            light.append(rng.choice(LIGHT_FAULTS))
            remaining -= 1
    rng.shuffle(structural)

    events: List[FaultEvent] = []
    start, end = 0.05 * horizon, 0.95 * horizon
    if structural:
        width = (end - start) / len(structural)
        for i, kind in enumerate(structural):
            w0 = start + i * width
            w1 = w0 + width * 0.8  # 20% gap before the next scenario
            if kind == "site_outage" and (w1 - w0) < MIN_OUTAGE_WINDOW:
                # Too cramped for removal + re-integration: downgrade.
                kind = "crash_replace" if rng.random() < 0.5 else "partition_heal"
            if kind == "partition_heal" and n < 2:
                kind = "crash_replace"
            events.extend(_structural(rng, kind, n, w0, w1))
    for kind in light:
        events.append(_light(rng, kind, n, start, end))

    # Prepare-reply loss rides on a dedicated stream (not the budget):
    # drawing it from the main stream would reshuffle every existing
    # schedule, invalidating the whole recorded seed corpus at once.
    prng = random.Random(derive_seed(config.seed, "chaos.prepare_loss"))
    if prng.random() < 0.35:
        events.append(
            FaultEvent(
                _uniform(prng, start, end),
                "prepare_reply_loss",
                {
                    "site": prng.randrange(n),
                    "duration": round(_uniform(prng, 0.3, 1.5), 6),
                },
            )
        )

    # Mid-handover target crash (rollback fixture): its own stream for
    # the same reason as prepare_reply_loss above -- existing schedules
    # must not reshuffle.
    mrng = random.Random(derive_seed(config.seed, "chaos.migration_crash"))
    if mrng.random() < 0.25:
        events.append(
            FaultEvent(
                _uniform(mrng, start, end),
                "migration_crash",
                {
                    "cid": "c%d" % mrng.randrange(n),
                    "to_site": mrng.randrange(n),
                    "kill_after": round(_uniform(mrng, 0.05, 0.5), 6),
                },
            )
        )

    schedule = Schedule(events)
    schedule.validate(n)
    return schedule


def _uniform(rng: random.Random, lo: float, hi: float) -> float:
    return lo + rng.random() * max(0.0, hi - lo)


def _structural(rng: random.Random, kind: str, n: int, w0: float, w1: float):
    if kind == "crash_replace":
        site = rng.randrange(n)
        t_crash = _uniform(rng, w0, w0 + 0.4 * (w1 - w0))
        t_replace = _uniform(rng, t_crash + 0.05, w1)
        return [
            FaultEvent(t_crash, "crash", {"site": site}),
            FaultEvent(t_replace, "replace", {"site": site}),
        ]
    if kind == "partition_heal":
        a, b = sorted(rng.sample(range(n), 2))
        t_cut = _uniform(rng, w0, (w0 + w1) / 2.0)
        t_heal = _uniform(rng, t_cut + 0.1, w1)
        return [
            FaultEvent(t_cut, "partition", {"a": a, "b": b}),
            FaultEvent(t_heal, "heal", {"a": a, "b": b}),
        ]
    if kind == "site_outage":
        site = rng.randrange(n)
        reassign_to = rng.choice([s for s in range(n) if s != site])
        t_fail = _uniform(rng, w0, w0 + 0.1 * (w1 - w0))
        t_remove = t_fail + _uniform(rng, 0.05, 0.2)
        t_reintegrate = _uniform(rng, t_remove + 1.5, w1)
        return [
            FaultEvent(t_fail, "fail_site", {"site": site}),
            FaultEvent(t_remove, "remove_site", {"site": site, "reassign_to": reassign_to}),
            FaultEvent(t_reintegrate, "reintegrate", {"site": site}),
        ]
    raise ValueError("unknown structural scenario %r" % (kind,))


def _light(rng: random.Random, kind: str, n: int, start: float, end: float) -> FaultEvent:
    at = _uniform(rng, start, end)
    if kind == "loss_burst":
        return FaultEvent(
            at,
            "loss_burst",
            {"rate": round(_uniform(rng, 0.05, 0.30), 6), "duration": round(_uniform(rng, 0.2, 1.0), 6)},
        )
    if kind == "flush_stall":
        return FaultEvent(
            at,
            "flush_stall",
            {"site": rng.randrange(n), "duration": round(_uniform(rng, 0.05, 0.5), 6)},
        )
    if kind == "handover":
        # The harness names its containers c0..c{n-1} (one per site).
        return FaultEvent(
            at, "handover", {"cid": "c%d" % rng.randrange(n), "to_site": rng.randrange(n)}
        )
    raise ValueError("unknown light fault %r" % (kind,))
