"""Counting sets (csets) -- the paper's conflict-free data type (§2, §3.3, §3.5).

A cset maps element ids to integer counts, *possibly negative*.  ``add``
increments an element's count, ``rem`` decrements it; because increment and
decrement commute, concurrent cset updates never produce a write-write
conflict and transactions touching only csets always fast-commit.

Removing from an empty cset yields count -1 -- an "anti-element": a later
add returns the cset to empty.

Reading a cset returns the elements with **non-zero** count (§3.3).
Applications using a cset as a conventional set should treat count >= 1 as
present and count <= 0 as absent (§3.5); :meth:`CSet.members` implements
that convention, while :meth:`CSet.counts` exposes raw counts for
applications where the count itself is meaningful (shopping carts,
reference counts, ...).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, Mapping, Tuple


class CSet:
    """A mutable counting set.

    The class is a plain data structure -- transactional behaviour (update
    buffering, snapshot reads) is implemented by the history and server
    layers, which *replay* ADD/DEL operations into a fresh CSet.
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: Mapping[Hashable, int] = ()):
        self._counts: Dict[Hashable, int] = {}
        if counts:
            for elem, count in dict(counts).items():
                if count != 0:
                    self._counts[elem] = int(count)

    # ------------------------------------------------------------------
    # Mutation (commutative)
    # ------------------------------------------------------------------
    def add(self, elem: Hashable, n: int = 1) -> None:
        """Add ``n`` copies of ``elem`` (increment its count)."""
        if n < 0:
            raise ValueError("add count must be >= 0; use rem")
        self._bump(elem, n)

    def rem(self, elem: Hashable, n: int = 1) -> None:
        """Remove ``n`` copies of ``elem`` (decrement its count).

        Unlike a multiset, the count may go negative (anti-elements)."""
        if n < 0:
            raise ValueError("rem count must be >= 0; use add")
        self._bump(elem, -n)

    def _bump(self, elem: Hashable, delta: int) -> None:
        new = self._counts.get(elem, 0) + delta
        if new == 0:
            self._counts.pop(elem, None)
        else:
            self._counts[elem] = new

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def count(self, elem: Hashable) -> int:
        """The count of ``elem`` (0 when absent) -- the setReadId value."""
        return self._counts.get(elem, 0)

    def counts(self) -> Dict[Hashable, int]:
        """All elements with non-zero count -- the setRead value (§3.3)."""
        return dict(self._counts)

    def members(self) -> Iterator[Hashable]:
        """Elements with count >= 1: the conventional-set view (§3.5)."""
        return (elem for elem, count in self._counts.items() if count >= 1)

    def __contains__(self, elem: Hashable) -> bool:
        return self._counts.get(elem, 0) >= 1

    def __len__(self) -> int:
        """Number of elements with non-zero count."""
        return len(self._counts)

    def __iter__(self) -> Iterator[Tuple[Hashable, int]]:
        return iter(self._counts.items())

    def is_empty(self) -> bool:
        return not self._counts

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def copy(self) -> "CSet":
        return CSet(self._counts)

    def merge(self, other: "CSet") -> "CSet":
        """Pointwise sum -- merging two replicas' update effects."""
        merged = self.copy()
        for elem, count in other._counts.items():
            merged._bump(elem, count)
        return merged

    def __eq__(self, other) -> bool:
        return isinstance(other, CSet) and self._counts == other._counts

    def __hash__(self):
        raise TypeError("CSet is mutable and unhashable")

    def __repr__(self) -> str:
        inner = ", ".join(
            "%r:%+d" % (e, c) for e, c in sorted(self._counts.items(), key=repr)
        )
        return "CSet{%s}" % inner
