"""Objects, object ids, and containers (paper §4.1).

Walter stores key-value objects of two kinds: *regular* (value is an
uninterpreted byte sequence) and *cset* (value is a counting set).  Objects
are grouped in containers; all objects in a container share a preferred
site and a replica set, stored once as container attributes.  An object id
is a (container id, local id) pair, so the container of an object can
never change.

Conceptually all objects always exist, initialized to nil (regular) or the
empty cset (§6) -- there are no create/destroy operations.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, Optional

from ..errors import ConfigurationError


class ObjectKind(enum.Enum):
    """The two Walter object types."""

    REGULAR = "regular"
    CSET = "cset"


@dataclass(frozen=True)
class ObjectId:
    """Identifier of a Walter object: container id + local id + kind.

    The kind is carried in the id (as the C++ implementation's ``newid``
    takes an ``OType``) so servers can type-check operations without a
    metadata lookup.
    """

    container: str
    local: str
    kind: ObjectKind = ObjectKind.REGULAR

    def __post_init__(self):
        # Object ids are hashed on every store/lock lookup.  Precompute the
        # same field-tuple hash the dataclass machinery would generate so
        # hash-dependent orderings (set iteration) are unchanged.
        object.__setattr__(
            self, "_hash", hash((self.container, self.local, self.kind))
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # String hashing is per-process (PYTHONHASHSEED), so the cached
        # ``_hash`` must not travel inside pickled state: an id unpickled
        # in another process (parallel executor workers) would never land
        # in the same dict bucket as a locally minted equal id.  Rebuild
        # through the constructor so ``__post_init__`` recomputes it.
        return (self.__class__, (self.container, self.local, self.kind))

    def __str__(self) -> str:
        tag = "c" if self.kind is ObjectKind.CSET else "r"
        return "%s/%s#%s" % (self.container, self.local, tag)

    @property
    def is_cset(self) -> bool:
        return self.kind is ObjectKind.CSET


@dataclass
class Container:
    """A logical grouping of objects with common placement attributes.

    ``preferred_site`` is where writes to the container's regular objects
    fast-commit; ``replica_sites`` is where the data is stored.  An object
    need not be replicated at every site -- reads at non-replica sites
    fetch from the preferred site (§5.3).
    """

    id: str
    preferred_site: int
    replica_sites: FrozenSet[int] = field(default_factory=frozenset)
    _local_seq: Iterator[int] = field(
        default_factory=lambda: itertools.count(), repr=False, compare=False
    )

    def __post_init__(self):
        self.replica_sites = frozenset(self.replica_sites)
        if self.replica_sites and self.preferred_site not in self.replica_sites:
            raise ConfigurationError(
                "container %r: preferred site %d must be a replica site %r"
                % (self.id, self.preferred_site, sorted(self.replica_sites))
            )

    def new_id(self, kind: ObjectKind = ObjectKind.REGULAR, local: Optional[str] = None) -> ObjectId:
        """Mint a fresh object id in this container (the ``newid`` API)."""
        if local is None:
            local = "o%d" % next(self._local_seq)
        return ObjectId(container=self.id, local=local, kind=kind)

    def replicated_at(self, site: int) -> bool:
        return site in self.replica_sites
