"""Transaction state shared by the spec models and the Walter servers."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, FrozenSet, Hashable, List, Optional, Tuple

from ..errors import TransactionStateError
from .objects import ObjectId
from .updates import (
    CSetAdd,
    CSetDel,
    DataUpdate,
    Update,
    cset_set,
    touched_oids,
    write_set,
)
from .versions import VectorTimestamp, Version

_tid_counter = itertools.count(1)


def fresh_tid(prefix: str = "tx") -> str:
    """Globally unique transaction id (unique within the process, which is
    the whole simulated world)."""
    return "%s-%d" % (prefix, next(_tid_counter))


class TxStatus(enum.Enum):
    """Lifecycle state of a transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Transaction:
    """A transaction executing at one site.

    Mirrors the attributes of the paper's pseudocode: ``tid``, ``site``,
    ``startVTS`` (Fig 10), the update buffer, and on commit a version
    ``⟨site, seqno⟩``.  Durability milestones (disaster-safe durable,
    globally visible) are tracked for the client callbacks of §4.2.
    """

    tid: str
    site: int
    start_vts: VectorTimestamp
    updates: List[Update] = field(default_factory=list)
    status: TxStatus = TxStatus.ACTIVE
    version: Optional[Version] = None
    commit_time: Optional[float] = None
    disaster_safe: bool = False
    globally_visible: bool = False

    # ------------------------------------------------------------------
    # Buffering operations
    # ------------------------------------------------------------------
    def require_active(self) -> None:
        if self.status is not TxStatus.ACTIVE:
            raise TransactionStateError(
                "transaction %s is %s" % (self.tid, self.status.value)
            )

    def buffer_write(self, oid: ObjectId, data: Any) -> None:
        self.require_active()
        self.updates.append(DataUpdate(oid, data))

    def buffer_set_add(self, oid: ObjectId, elem: Hashable) -> None:
        self.require_active()
        self.updates.append(CSetAdd(oid, elem))

    def buffer_set_del(self, oid: ObjectId, elem: Hashable) -> None:
        self.require_active()
        self.updates.append(CSetDel(oid, elem))

    # ------------------------------------------------------------------
    # Derived sets
    # ------------------------------------------------------------------
    @property
    def write_set(self) -> FrozenSet[ObjectId]:
        """Regular oids written (conflict-checked; excludes csets, Fig 11)."""
        return write_set(self.updates)

    @property
    def cset_set(self) -> FrozenSet[ObjectId]:
        return cset_set(self.updates)

    @property
    def touched(self) -> FrozenSet[ObjectId]:
        return touched_oids(self.updates)

    @property
    def is_read_only(self) -> bool:
        return not self.updates

    # ------------------------------------------------------------------
    # Outcomes
    # ------------------------------------------------------------------
    def mark_committed(self, version: Version, at: float) -> None:
        self.require_active()
        self.status = TxStatus.COMMITTED
        self.version = version
        self.commit_time = at

    def mark_committed_read_only(self, at: float) -> None:
        """Read-only transactions commit without a version: they make no
        updates, so there is nothing to propagate and they are trivially
        disaster-safe durable and globally visible."""
        self.require_active()
        if self.updates:
            raise TransactionStateError(
                "transaction %s has updates; not read-only" % self.tid
            )
        self.status = TxStatus.COMMITTED
        self.commit_time = at
        self.disaster_safe = True
        self.globally_visible = True

    def mark_aborted(self) -> None:
        self.require_active()
        self.status = TxStatus.ABORTED

    def __repr__(self) -> str:
        return "Transaction(%s@site%d %s)" % (self.tid, self.site, self.status.value)


@dataclass
class CommitRecord:
    """What propagation ships between sites: the committed transaction's
    identity, origin version, snapshot, and updates (Fig 13's ``x``)."""

    tid: str
    site: int
    seqno: int
    start_vts: VectorTimestamp
    updates: List[Update]
    #: Simulated time the transaction committed at its origin; carried on
    #: the wire so receivers can measure replication lag (repro.obs).
    committed_at: Optional[float] = None
    #: Trimmed records only: the container ids the ORIGINAL record's
    #: updates touched.  Partial replication drops non-replica updates
    #: from a site's wire copy, so recovery cannot tell from ``updates``
    #: alone what the transaction wrote; site removal needs the full
    #: footprint to judge whether every written container still has a
    #: surviving replica holding the data.  ``None`` on full records.
    touched: Optional[Tuple[str, ...]] = None
    #: Cached ``Version(site, seqno)`` -- site/seqno are fixed at
    #: construction and the property is on several hot paths.
    _version: Optional[Version] = field(default=None, repr=False, compare=False)

    @property
    def version(self) -> Version:
        v = self._version
        if v is None:
            v = self._version = Version(self.site, self.seqno)
        return v

    def __reduce__(self):
        # Commit records are the bulk of cross-cluster traffic in the
        # parallel executor.  Constructor-args reduce is ~2x cheaper than
        # the default dict pickle, drops the lazily rebuilt ``_version``
        # cache from the wire, and inlines the snapshot vector as a bare
        # int tuple (one fewer Python-level reduce per record; update
        # objects stay as-is so shared oids keep their pickle-memo hits).
        return (
            _restore_record,
            (self.tid, self.site, self.seqno, self.start_vts._seqnos,
             self.updates, self.committed_at, self.touched),
        )

    def trimmed(self, updates: List[Update]) -> "CommitRecord":
        """A copy carrying only ``updates`` (a subset of this record's):
        what partial replication ships to a site that does not replicate
        every container the transaction wrote.  Identity, origin version,
        snapshot, and commit time are preserved, so receivers advance
        their vector clocks and release 2PC locks exactly as they would
        for the full record.  The copy remembers the original write
        footprint in ``touched``."""
        touched = self.touched
        if touched is None:
            touched = tuple(sorted({u.oid.container for u in self.updates}))
        return CommitRecord(
            self.tid, self.site, self.seqno, self.start_vts, updates,
            self.committed_at, touched=touched,
        )

    def payload_bytes(self) -> int:
        """Rough wire size, used by the network bandwidth model."""
        base = 64
        per_update = 0
        for u in self.updates:
            if isinstance(u, DataUpdate):
                data = u.data
                if isinstance(data, (bytes, str)):
                    per_update += 32 + len(data)
                else:
                    per_update += 96
            else:
                per_update += 48
        return base + per_update


def _restore_record(tid, site, seqno, seqnos, updates, committed_at, touched=None):
    """Unpickle target of :meth:`CommitRecord.__reduce__`."""
    return CommitRecord(
        tid, site, seqno, VectorTimestamp._wrap(seqnos), updates, committed_at,
        touched=touched,
    )
