"""Versions and vector timestamps (paper §5.2).

The centralized PSI specification uses monotonic timestamps, which are
expensive to produce across sites.  The Walter implementation replaces
them with:

* a **version** ``⟨site, seqno⟩`` assigned to a transaction at commit --
  the site where it executed plus a per-site sequence number, and
* a **vector timestamp** representing a snapshot: one sequence number per
  site, counting how many transactions of that site are in the snapshot.

A version ``⟨site, seqno⟩`` is *visible* to a vector timestamp ``VTS``
iff ``seqno <= VTS[site]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple


@dataclass(frozen=True, order=True)
class Version:
    """Commit version ``⟨site, seqno⟩`` of a transaction.

    Ordering (site-major) is defined only so versions can be sorted for
    stable test output; protocol code never relies on cross-site order.
    """

    site: int
    seqno: int

    def __post_init__(self):
        # Versions key history maps and visibility checks; precompute the
        # same field-tuple hash the dataclass machinery would generate.
        object.__setattr__(self, "_hash", hash((self.site, self.seqno)))

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Rebuild through the constructor: cheaper than the default
        # state-dict pickle and keeps the cached hash out of the wire
        # format (int hashes are process-stable, but the slim form wins
        # on the parallel executor's barrier exchanges).
        return (Version, (self.site, self.seqno))

    def __str__(self) -> str:
        return "<%d:%d>" % (self.site, self.seqno)


class VectorTimestamp:
    """An immutable snapshot vector: seqno per site.

    Immutability keeps snapshot semantics honest -- a transaction's
    ``startVTS`` must not drift while the transaction runs.  Servers hold a
    *current* vector and replace it on every commit via :meth:`advance` /
    :meth:`with_entry`.
    """

    __slots__ = ("_seqnos",)

    def __init__(self, seqnos: Sequence[int]):
        self._seqnos: Tuple[int, ...] = tuple(int(s) for s in seqnos)
        if any(s < 0 for s in self._seqnos):
            raise ValueError("sequence numbers must be >= 0: %r" % (seqnos,))

    @classmethod
    def _wrap(cls, seqnos: Tuple[int, ...]) -> "VectorTimestamp":
        """Internal constructor for values derived from an existing
        (already validated) vector -- skips the per-entry validation."""
        vts = cls.__new__(cls)
        vts._seqnos = seqnos
        return vts

    @classmethod
    def zeros(cls, n_sites: int) -> "VectorTimestamp":
        return cls._wrap((0,) * n_sites)

    @property
    def n_sites(self) -> int:
        return len(self._seqnos)

    def __getitem__(self, site: int) -> int:
        return self._seqnos[site]

    def __iter__(self) -> Iterator[int]:
        return iter(self._seqnos)

    def __len__(self) -> int:
        return len(self._seqnos)

    def __eq__(self, other) -> bool:
        return isinstance(other, VectorTimestamp) and self._seqnos == other._seqnos

    def __hash__(self) -> int:
        return hash(self._seqnos)

    def __reduce__(self):
        # Every propagated commit record carries a snapshot vector, so
        # these are pickled by the thousand at parallel-executor
        # barriers; ``_wrap`` skips the per-entry validation on load.
        return (VectorTimestamp._wrap, (self._seqnos,))

    def __repr__(self) -> str:
        return "VTS(%s)" % (", ".join(str(s) for s in self._seqnos))

    def advance(self, site: int) -> "VectorTimestamp":
        """A copy with ``site``'s entry incremented by one."""
        seqnos = list(self._seqnos)
        seqnos[site] += 1
        return VectorTimestamp._wrap(tuple(seqnos))

    def with_entry(self, site: int, seqno: int) -> "VectorTimestamp":
        """A copy with ``site``'s entry replaced by ``seqno``."""
        if seqno < 0:
            raise ValueError("sequence numbers must be >= 0: %r" % (seqno,))
        seqnos = list(self._seqnos)
        seqnos[site] = int(seqno)
        return VectorTimestamp._wrap(tuple(seqnos))

    def merge(self, other: "VectorTimestamp") -> "VectorTimestamp":
        """Element-wise maximum (join in the vector-clock lattice)."""
        self._check_same_width(other)
        return VectorTimestamp._wrap(
            tuple(max(a, b) for a, b in zip(self._seqnos, other._seqnos))
        )

    def meet(self, other: "VectorTimestamp") -> "VectorTimestamp":
        """Element-wise minimum (meet in the vector-clock lattice) --
        used to fold active transactions' snapshots into a GC watermark
        no live read can be below."""
        self._check_same_width(other)
        return VectorTimestamp._wrap(
            tuple(min(a, b) for a, b in zip(self._seqnos, other._seqnos))
        )

    def dominates(self, other: "VectorTimestamp") -> bool:
        """True iff every entry of self >= the matching entry of other.

        This is the ``CommittedVTS >= x.startVTS`` test of Fig 13: the
        local site has committed every transaction in x's snapshot.
        """
        a = self._seqnos
        b = other._seqnos
        if len(a) != len(b):
            self._check_same_width(other)
        for x, y in zip(a, b):
            if x < y:
                return False
        return True

    def __ge__(self, other: "VectorTimestamp") -> bool:
        return self.dominates(other)

    def __le__(self, other: "VectorTimestamp") -> bool:
        return other.dominates(self)

    def visible(self, version: Version) -> bool:
        """Is ``version`` visible to this snapshot?  (§5.2)"""
        if not 0 <= version.site < len(self._seqnos):
            raise ValueError("version %s outside site universe" % (version,))
        return version.seqno <= self._seqnos[version.site]

    def _check_same_width(self, other: "VectorTimestamp") -> None:
        if len(self._seqnos) != len(other._seqnos):
            raise ValueError(
                "vector width mismatch: %d vs %d"
                % (len(self._seqnos), len(other._seqnos))
            )


def merge_all(vectors: Iterable[VectorTimestamp]) -> VectorTimestamp:
    """Join of a non-empty collection of vector timestamps."""
    result = None
    for vts in vectors:
        result = vts if result is None else result.merge(vts)
    if result is None:
        raise ValueError("merge_all of empty collection")
    return result
