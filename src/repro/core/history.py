"""Per-object version histories (the ``History_i[oid]`` variable of Fig 9).

Each Walter server keeps, per object, the sequence of updates applied at
that site, each tagged with the version ``⟨site, seqno⟩`` of the
responsible transaction.  Entries are appended in the order transactions
are applied locally, which for committed state is the site's commit order;
since PSI forbids write-write conflicts, any two versions of the same
regular object are causally ordered, and local apply order is consistent
with that causal order.  Hence "the last update in the history visible to
startVTS" (Fig 10) is well-defined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional

from ..errors import TypeMismatchError
from .cset import CSet
from .objects import ObjectId, ObjectKind
from .updates import CSetAdd, CSetDel, DataUpdate, Update
from .versions import VectorTimestamp, Version


@dataclass(frozen=True)
class HistoryEntry:
    """One update plus the version of the transaction that made it."""

    update: Update
    version: Version


class ObjectHistory:
    """The ordered update sequence of a single object at one site."""

    __slots__ = ("oid", "_entries")

    def __init__(self, oid: ObjectId):
        self.oid = oid
        self._entries: List[HistoryEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[HistoryEntry]:
        return iter(self._entries)

    def append(self, update: Update, version: Version) -> None:
        if update.oid != self.oid:
            raise ValueError("update for %s appended to history of %s" % (update.oid, self.oid))
        self._entries.append(HistoryEntry(update, version))

    def visible_entries(self, vts: VectorTimestamp) -> Iterator[HistoryEntry]:
        """Entries whose version is visible to snapshot ``vts``, in order."""
        return (e for e in self._entries if vts.visible(e.version))

    def latest_visible(self, vts: VectorTimestamp) -> Optional[HistoryEntry]:
        """The last visible entry (regular-object snapshot read)."""
        result = None
        for entry in self.visible_entries(vts):
            result = entry
        return result

    def unmodified_since(self, vts: VectorTimestamp) -> bool:
        """Fig 11's ``unmodified(oid, VTS)``: every version of the object in
        the local history is visible to ``vts`` -- i.e. nothing was
        committed here after the snapshot."""
        return all(vts.visible(e.version) for e in self._entries)

    def versions(self) -> List[Version]:
        return [e.version for e in self._entries]

    def truncate_versions(self, keep: Iterable[Version]) -> int:
        """Remove entries whose version is not in ``keep``; returns count
        removed.  Used by site-failure recovery to discard replicated data
        of non-surviving transactions (§5.7)."""
        keep_set = set(keep)
        before = len(self._entries)
        self._entries = [e for e in self._entries if e.version in keep_set]
        return before - len(self._entries)

    def gc_before(self, vts: VectorTimestamp) -> int:
        """Garbage-collect superseded regular-object entries: drop every
        visible entry except the last one (the visible snapshot value).
        Cset histories are never GC'd this way because their state is the
        sum of all entries."""
        if self.oid.kind is ObjectKind.CSET:
            return 0
        last = self.latest_visible(vts)
        if last is None:
            return 0
        before = len(self._entries)
        self._entries = [
            e for e in self._entries if e is last or not vts.visible(e.version)
        ]
        return before - len(self._entries)


class SiteHistories:
    """All object histories at one site, plus typed snapshot reads."""

    def __init__(self):
        self._histories: Dict[ObjectId, ObjectHistory] = {}

    def history(self, oid: ObjectId) -> ObjectHistory:
        hist = self._histories.get(oid)
        if hist is None:
            hist = ObjectHistory(oid)
            self._histories[oid] = hist
        return hist

    def known_oids(self) -> List[ObjectId]:
        return list(self._histories)

    def __contains__(self, oid: ObjectId) -> bool:
        return oid in self._histories

    def apply(self, updates: Iterable[Update], version: Version) -> None:
        """Fig 11's ``update(updates, version)``: append every update to
        the matching object history, tagged with ``version``."""
        for update in updates:
            self.history(update.oid).append(update, version)

    # ------------------------------------------------------------------
    # Snapshot reads
    # ------------------------------------------------------------------
    def read_regular(
        self, oid: ObjectId, vts: VectorTimestamp, buffer: Iterable[Update] = ()
    ) -> Any:
        """Regular-object snapshot read: the transaction's own buffered
        write if any, else the last visible committed version, else nil."""
        if oid.kind is not ObjectKind.REGULAR:
            raise TypeMismatchError("read on cset object %s; use read_cset" % oid)
        for update in reversed(list(buffer)):
            if isinstance(update, DataUpdate) and update.oid == oid:
                return update.data
        entry = self.history(oid).latest_visible(vts)
        if entry is None:
            return None
        assert isinstance(entry.update, DataUpdate)
        return entry.update.data

    def read_cset(
        self, oid: ObjectId, vts: VectorTimestamp, buffer: Iterable[Update] = ()
    ) -> CSet:
        """Cset snapshot read: sum of visible ADD/DEL plus buffered ops."""
        if oid.kind is not ObjectKind.CSET:
            raise TypeMismatchError("setRead on regular object %s; use read_regular" % oid)
        cset = CSet()
        for entry in self.history(oid).visible_entries(vts):
            self._apply_cset_entry(cset, entry.update)
        for update in buffer:
            if update.oid == oid:
                self._apply_cset_entry(cset, update)
        return cset

    @staticmethod
    def _apply_cset_entry(cset: CSet, update: Update) -> None:
        if isinstance(update, CSetAdd):
            cset.add(update.elem)
        elif isinstance(update, CSetDel):
            cset.rem(update.elem)
        else:
            raise TypeMismatchError("DATA update found in cset history: %r" % (update,))

    def unmodified(self, oid: ObjectId, vts: VectorTimestamp) -> bool:
        return self.history(oid).unmodified_since(vts)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def gc(self, vts: VectorTimestamp) -> int:
        """GC superseded regular-object versions below snapshot ``vts``."""
        return sum(h.gc_before(vts) for h in self._histories.values())

    def snapshot_state(self, vts: VectorTimestamp) -> Dict[ObjectId, Any]:
        """Materialize every object's value at snapshot ``vts`` (test aid)."""
        state: Dict[ObjectId, Any] = {}
        for oid in self._histories:
            if oid.kind is ObjectKind.CSET:
                state[oid] = self.read_cset(oid, vts)
            else:
                state[oid] = self.read_regular(oid, vts)
        return state
