"""Per-object version histories (the ``History_i[oid]`` variable of Fig 9).

Each Walter server keeps, per object, the sequence of updates applied at
that site, each tagged with the version ``⟨site, seqno⟩`` of the
responsible transaction.  Entries are appended in the order transactions
are applied locally, which for committed state is the site's commit order;
since PSI forbids write-write conflicts, any two versions of the same
regular object are causally ordered, and local apply order is consistent
with that causal order.  Hence "the last update in the history visible to
startVTS" (Fig 10) is well-defined.

Snapshot reads and the commit-time ``unmodified`` check are the hot
paths (Fig 10/Fig 11), so the history is indexed rather than scanned:

* entries are bucketed **per origin site in seqno order** (apply order
  guarantees per-site seqnos are strictly increasing), so the latest
  entry visible to a vector timestamp is one binary search per site
  instead of a scan of the full history;
* a per-object **max-seqno-per-site summary** makes ``unmodified_since``
  an O(sites) comparison;
* cset histories carry an **incremental materialization**: a cached base
  :class:`CSet` equal to the fold of every entry visible at a GC
  watermark, plus the suffix of newer entries.  ``cset_value`` copies
  the base and folds only the suffix, so a hot cset's read cost is
  bounded by the churn since the last GC, not its lifetime update count.

Garbage collection (:meth:`ObjectHistory.gc_before`) advances the
watermark: superseded regular versions are dropped and visible cset
entries are folded into the base.  The contract is that **every snapshot
the site will still serve dominates the watermark** (the server derives
it from the minimum ``startVTS`` over active transactions met with
``CommittedVTS``); under that contract GC never changes a visible read
result or an ``unmodified`` verdict.  Reads below the watermark raise
:class:`~repro.errors.SnapshotTooOldError` instead of silently serving a
value the GC may have discarded.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import SnapshotTooOldError, TypeMismatchError
from .cset import CSet
from .objects import ObjectId, ObjectKind
from .updates import CSetAdd, CSetDel, DataUpdate, Update
from .versions import VectorTimestamp, Version


@dataclass(frozen=True)
class HistoryEntry:
    """One update plus the version of the transaction that made it."""

    update: Update
    version: Version


class _SiteBucket:
    """One origin site's entries, in (strictly increasing) seqno order.

    ``seqnos`` is kept as a parallel list so visibility lookups are a
    plain ``bisect`` over ints; ``orders`` holds each entry's global
    apply index, used to order the per-site winners of a snapshot read.
    """

    __slots__ = ("seqnos", "entries", "orders")

    def __init__(self):
        self.seqnos: List[int] = []
        self.entries: List[HistoryEntry] = []
        self.orders: List[int] = []


class ObjectHistory:
    """The ordered update sequence of a single object at one site."""

    __slots__ = (
        "oid",
        "_entries",
        "_orders",
        "_buckets",
        "_next_order",
        "_base",
        "_base_max_seqno",
        "_floor",
        "_gc_vts",
    )

    def __init__(self, oid: ObjectId):
        self.oid = oid
        #: Suffix entries in apply order (for csets: entries newer than
        #: the base; for regular objects: everything not yet GC'd).
        self._entries: List[HistoryEntry] = []
        self._orders: List[int] = []
        self._buckets: Dict[int, _SiteBucket] = {}
        self._next_order = 0
        #: Cset base: fold of every entry visible at ``_gc_vts`` (csets
        #: only; ``None`` until the first fold).
        self._base: Optional[CSet] = None
        #: Per-site max seqno absorbed below the watermark: cset entries
        #: folded into the base, or regular versions pruned as
        #: superseded.  Keeps ``unmodified_since`` exact for *any*
        #: snapshot and makes the too-old check object-precise.
        self._base_max_seqno: Dict[int, int] = {}
        #: Regular objects: the version GC kept as the watermark-visible
        #: value at the most recent prune.  A snapshot that sees it (or
        #: that saw nothing pruned) still reads exactly.
        self._floor: Optional[Version] = None
        #: Watermark of the last GC applied to this history (regular
        #: prune or cset fold); ``None`` if never GC'd.
        self._gc_vts: Optional[VectorTimestamp] = None

    def __len__(self) -> int:
        """Number of *suffix* entries (entries folded into a cset base
        are no longer individually retained)."""
        return len(self._entries)

    def __iter__(self) -> Iterator[HistoryEntry]:
        return iter(self._entries)

    @property
    def gc_vts(self) -> Optional[VectorTimestamp]:
        return self._gc_vts

    @property
    def base_counts(self) -> Optional[Dict[Any, int]]:
        """The cset base as raw counts (``None`` if no fold happened)."""
        return self._base.counts() if self._base is not None else None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, update: Update, version: Version) -> None:
        # Identity almost always holds (no real serialization in the sim),
        # short-circuiting the dataclass field comparison.
        if update.oid is not self.oid and update.oid != self.oid:
            raise ValueError("update for %s appended to history of %s" % (update.oid, self.oid))
        bucket = self._buckets.get(version.site)
        if bucket is None:
            bucket = self._buckets[version.site] = _SiteBucket()
        # Equal seqnos are one transaction's multiple updates to the same
        # object; only going backwards breaks the bucket's sort order.
        if bucket.seqnos and version.seqno < bucket.seqnos[-1]:
            raise ValueError(
                "non-monotonic apply: %s after seqno %d of site %d in history of %s"
                % (version, bucket.seqnos[-1], version.site, self.oid)
            )
        if self._gc_vts is not None and self._gc_vts.visible(version):
            raise ValueError(
                "version %s appended below the GC watermark %r of %s"
                % (version, self._gc_vts, self.oid)
            )
        entry = HistoryEntry(update, version)
        order = self._next_order
        self._next_order += 1
        self._entries.append(entry)
        self._orders.append(order)
        bucket.seqnos.append(version.seqno)
        bucket.entries.append(entry)
        bucket.orders.append(order)

    # ------------------------------------------------------------------
    # Snapshot reads
    # ------------------------------------------------------------------
    def visible_entries(self, vts: VectorTimestamp) -> Iterator[HistoryEntry]:
        """Suffix entries whose version is visible to snapshot ``vts``,
        in apply order.  (Cset entries folded into the base are not
        enumerable; use :meth:`cset_value` for the materialized state.)"""
        return (e for e in self._entries if vts.visible(e.version))

    def latest_visible(self, vts: VectorTimestamp) -> Optional[HistoryEntry]:
        """The last visible entry (regular-object snapshot read): one
        binary search per origin site, then the apply-order maximum of
        the per-site winners."""
        best_entry = None
        best_order = -1
        for site, bucket in self._buckets.items():
            i = bisect_right(bucket.seqnos, vts[site]) - 1
            if i >= 0 and bucket.orders[i] > best_order:
                best_order = bucket.orders[i]
                best_entry = bucket.entries[i]
        return best_entry

    def unmodified_since(self, vts: VectorTimestamp) -> bool:
        """Fig 11's ``unmodified(oid, VTS)``: every version of the object
        in the local history is visible to ``vts`` -- i.e. nothing was
        committed here after the snapshot.  O(sites): all entries of a
        site are visible iff its maximum seqno is."""
        for site, bucket in self._buckets.items():
            if bucket.seqnos and not vts.visible(Version(site, bucket.seqnos[-1])):
                return False
        for site, seqno in self._base_max_seqno.items():
            if not vts.visible(Version(site, seqno)):
                return False
        return True

    def cset_value(self, vts: VectorTimestamp) -> CSet:
        """Materialize a cset snapshot: copy of the base plus the fold of
        suffix entries visible to ``vts``.  Cset folds commute, so the
        suffix can be folded per site via the same bisect index."""
        self._check_not_below_watermark(vts)
        cset = self._base.copy() if self._base is not None else CSet()
        for site, bucket in self._buckets.items():
            upto = bisect_right(bucket.seqnos, vts[site])
            for entry in bucket.entries[:upto]:
                _apply_cset_update(cset, entry.update)
        return cset

    def _check_not_below_watermark(self, vts: VectorTimestamp) -> None:
        """Object-precise too-old check (not the full site watermark:
        remote readers routinely lag it without being affected).

        Csets: the base is the fold of exactly the absorbed entries, so
        the read is exact iff every absorbed entry is visible -- i.e.
        ``vts`` dominates the per-site absorbed maxima.  Regular objects:
        exact iff ``vts`` sees the floor (every pruned version has a
        smaller apply order, so the answer comes from retained entries)
        or nothing was pruned."""
        if not self._base_max_seqno:
            return
        if self.oid.kind is ObjectKind.CSET:
            for site, seqno in self._base_max_seqno.items():
                if vts[site] < seqno:
                    raise SnapshotTooOldError(
                        "snapshot %r of %s is below absorbed version %s"
                        % (vts, self.oid, Version(site, seqno))
                    )
            return
        if self._floor is not None and not vts.visible(self._floor):
            raise SnapshotTooOldError(
                "snapshot %r of %s is below the GC floor %s"
                % (vts, self.oid, self._floor)
            )

    def versions(self) -> List[Version]:
        return [e.version for e in self._entries]

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def truncate_versions(self, keep: Iterable[Version]) -> int:
        """Remove suffix entries whose version is not in ``keep``;
        returns count removed.  Used by site-failure recovery to discard
        replicated data of non-surviving transactions (§5.7).  Entries
        already folded into a cset base cannot be truncated -- the server
        guarantees abandoned versions are never below the GC watermark
        by not GC'ing while its site is inactive."""
        keep_set = set(keep)
        kept = [
            (e, o)
            for e, o in zip(self._entries, self._orders)
            if e.version in keep_set
        ]
        removed = len(self._entries) - len(kept)
        if removed:
            self._rebuild(kept)
        return removed

    def gc_before(self, vts: VectorTimestamp, fold_cset: bool = False) -> int:
        """Advance the GC watermark to ``vts``.

        Regular objects: drop every visible entry except the last (the
        visible snapshot value).  Csets: when ``fold_cset``, fold visible
        entries into the cached base (their sum *is* the visible state);
        otherwise leave csets untouched (the caller cannot guarantee the
        base would stay mergeable, e.g. for objects it does not
        replicate).  Returns the number of entries removed/folded."""
        if self.oid.kind is ObjectKind.CSET:
            if not fold_cset:
                return 0
            return self._fold_base(vts)
        last = self.latest_visible(vts)
        if last is None:
            return 0
        kept = [
            (e, o)
            for e, o in zip(self._entries, self._orders)
            if e is last or not vts.visible(e.version)
        ]
        removed = len(self._entries) - len(kept)
        if removed:
            for entry, _order in zip(self._entries, self._orders):
                if entry is last or not vts.visible(entry.version):
                    continue
                site, seqno = entry.version.site, entry.version.seqno
                if seqno > self._base_max_seqno.get(site, -1):
                    self._base_max_seqno[site] = seqno
            self._floor = last.version
            self._rebuild(kept)
        self._advance_watermark(vts)
        return removed

    def _fold_base(self, vts: VectorTimestamp) -> int:
        """Fold every entry visible at ``vts`` into the cset base.  Any
        version visible at ``vts`` has already been applied here (per-site
        apply order is contiguous below ``CommittedVTS``), so no future
        append can land below the new watermark."""
        folded = [
            (e, o) for e, o in zip(self._entries, self._orders) if vts.visible(e.version)
        ]
        if not folded:
            self._advance_watermark(vts)
            return 0
        if self._base is None:
            self._base = CSet()
        for entry, _order in folded:
            _apply_cset_update(self._base, entry.update)
            site, seqno = entry.version.site, entry.version.seqno
            if seqno > self._base_max_seqno.get(site, -1):
                self._base_max_seqno[site] = seqno
        kept = [
            (e, o)
            for e, o in zip(self._entries, self._orders)
            if not vts.visible(e.version)
        ]
        self._rebuild(kept)
        self._advance_watermark(vts)
        return len(folded)

    def _advance_watermark(self, vts: VectorTimestamp) -> None:
        # Monotone join: a returning site's committed frontier can be
        # lowered by recovery truncation, and the watermark must never
        # move backwards (the base cannot be unfolded).
        self._gc_vts = vts if self._gc_vts is None else self._gc_vts.merge(vts)

    def _rebuild(self, kept: List[Tuple[HistoryEntry, int]]) -> None:
        """Reset the suffix structures to ``kept`` (entry, order) pairs,
        preserving apply order and original apply indices."""
        self._entries = [e for e, _o in kept]
        self._orders = [o for _e, o in kept]
        self._buckets = {}
        for entry, order in kept:
            bucket = self._buckets.get(entry.version.site)
            if bucket is None:
                bucket = self._buckets[entry.version.site] = _SiteBucket()
            bucket.seqnos.append(entry.version.seqno)
            bucket.entries.append(entry)
            bucket.orders.append(order)

    def is_empty(self) -> bool:
        return not self._entries and self._base is None

    # ------------------------------------------------------------------
    # Serialization (checkpointing)
    # ------------------------------------------------------------------
    def dump(self) -> Dict[str, Any]:
        """Checkpointable state: base + suffix.  The checkpointer
        deep-copies, so returning live references is fine."""
        return {
            "base": self._base.counts() if self._base is not None else None,
            "base_max_seqno": dict(self._base_max_seqno),
            "floor": self._floor,
            "gc_vts": self._gc_vts,
            "entries": [(e.update, e.version) for e in self._entries],
        }

    @classmethod
    def load(cls, oid: ObjectId, state: Dict[str, Any]) -> "ObjectHistory":
        hist = cls(oid)
        if state["base"] is not None:
            hist._base = CSet(state["base"])
        hist._base_max_seqno = dict(state["base_max_seqno"])
        hist._floor = state["floor"]
        # Entries first, watermark after: a regular history retains its
        # watermark-visible floor entry, which the append-time guard
        # would otherwise reject.
        for update, version in state["entries"]:
            hist.append(update, version)
        hist._gc_vts = state["gc_vts"]
        return hist


def _apply_cset_update(cset: CSet, update: Update) -> None:
    if isinstance(update, CSetAdd):
        cset.add(update.elem)
    elif isinstance(update, CSetDel):
        cset.rem(update.elem)
    else:
        raise TypeMismatchError("DATA update found in cset history: %r" % (update,))


class SiteHistories:
    """All object histories at one site, plus typed snapshot reads."""

    def __init__(self):
        self._histories: Dict[ObjectId, ObjectHistory] = {}

    def history(self, oid: ObjectId) -> ObjectHistory:
        """Allocating accessor: the apply path (and tests) may create the
        history of a first-touched object.  Read paths must use
        :meth:`get` -- reading a nonexistent oid must not allocate."""
        hist = self._histories.get(oid)
        if hist is None:
            hist = ObjectHistory(oid)
            self._histories[oid] = hist
        return hist

    def get(self, oid: ObjectId) -> Optional[ObjectHistory]:
        """Non-mutating lookup for read paths."""
        return self._histories.get(oid)

    def known_oids(self) -> List[ObjectId]:
        return list(self._histories)

    def total_entries(self) -> int:
        """Retained suffix entries across all objects (memory gauge)."""
        return sum(len(h) for h in self._histories.values())

    def __contains__(self, oid: ObjectId) -> bool:
        return oid in self._histories

    def apply(self, updates: Iterable[Update], version: Version) -> None:
        """Fig 11's ``update(updates, version)``: append every update to
        the matching object history, tagged with ``version``."""
        for update in updates:
            self.history(update.oid).append(update, version)

    # ------------------------------------------------------------------
    # Snapshot reads
    # ------------------------------------------------------------------
    def read_regular(
        self, oid: ObjectId, vts: VectorTimestamp, buffer: Iterable[Update] = ()
    ) -> Any:
        """Regular-object snapshot read: the transaction's own buffered
        write if any, else the last visible committed version, else nil."""
        if oid.kind is not ObjectKind.REGULAR:
            raise TypeMismatchError("read on cset object %s; use read_cset" % oid)
        for update in reversed(list(buffer)):
            if isinstance(update, DataUpdate) and update.oid == oid:
                return update.data
        hist = self._histories.get(oid)
        if hist is None:
            return None
        hist._check_not_below_watermark(vts)
        entry = hist.latest_visible(vts)
        if entry is None:
            return None
        assert isinstance(entry.update, DataUpdate)
        return entry.update.data

    def read_cset(
        self, oid: ObjectId, vts: VectorTimestamp, buffer: Iterable[Update] = ()
    ) -> CSet:
        """Cset snapshot read: sum of visible ADD/DEL plus buffered ops."""
        if oid.kind is not ObjectKind.CSET:
            raise TypeMismatchError("setRead on regular object %s; use read_regular" % oid)
        hist = self._histories.get(oid)
        cset = hist.cset_value(vts) if hist is not None else CSet()
        for update in buffer:
            if update.oid == oid:
                _apply_cset_update(cset, update)
        return cset

    def unmodified(self, oid: ObjectId, vts: VectorTimestamp) -> bool:
        hist = self._histories.get(oid)
        return True if hist is None else hist.unmodified_since(vts)

    def remote_read_payload(self, oid: ObjectId, vts: VectorTimestamp) -> Dict[str, Any]:
        """Serve a remote snapshot read (§5.3): the suffix entries
        visible to the caller plus, for csets, the cached base.  The GC
        watermark is included so the caller can discard its own stale
        local entries (anything visible at the watermark is already
        reflected in this payload)."""
        hist = self._histories.get(oid)
        if hist is None:
            return {"entries": [], "base": None, "gc_vts": None}
        hist._check_not_below_watermark(vts)
        return {
            "entries": [(e.update, e.version) for e in hist.visible_entries(vts)],
            "base": hist.base_counts,
            "gc_vts": hist.gc_vts,
        }

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def gc(self, vts: VectorTimestamp, fold_cset=None) -> int:
        """GC below watermark ``vts``: drop superseded regular versions,
        and fold cset histories for which ``fold_cset(oid)`` is true into
        their cached base.  Also drops fully-empty histories."""
        removed = 0
        empty: List[ObjectId] = []
        for oid, hist in self._histories.items():
            removed += hist.gc_before(
                vts, fold_cset=bool(fold_cset and fold_cset(oid))
            )
            if hist.is_empty():
                empty.append(oid)
        for oid in empty:
            del self._histories[oid]
        return removed

    def snapshot_state(self, vts: VectorTimestamp) -> Dict[ObjectId, Any]:
        """Materialize every object's value at snapshot ``vts`` (test aid)."""
        state: Dict[ObjectId, Any] = {}
        for oid in self._histories:
            if oid.kind is ObjectKind.CSET:
                state[oid] = self.read_cset(oid, vts)
            else:
                state[oid] = self.read_regular(oid, vts)
        return state

    # ------------------------------------------------------------------
    # Serialization (checkpointing)
    # ------------------------------------------------------------------
    def dump(self) -> Dict[ObjectId, Dict[str, Any]]:
        return {oid: hist.dump() for oid, hist in self._histories.items()}

    def export_container(self, cid: str) -> Dict[ObjectId, Dict[str, Any]]:
        """Dump the retained histories of one container's objects --
        the replica-backfill payload a site joining the container's
        replica set installs (partial replication, DESIGN.md §13)."""
        return {
            oid: hist.dump()
            for oid, hist in self._histories.items()
            if oid.container == cid
        }

    def install_container(self, dumped: Dict[ObjectId, Dict[str, Any]]) -> int:
        """Install a replica backfill from :meth:`export_container`.

        Replaces this site's histories of the dumped objects: the
        installer was not a replica until now, so every record it
        received for them arrived trimmed and its local histories are
        empty."""
        for oid, state in dumped.items():
            self._histories[oid] = ObjectHistory.load(oid, state)
        return len(dumped)

    @classmethod
    def load(cls, state: Dict[ObjectId, Dict[str, Any]]) -> "SiteHistories":
        hists = cls()
        for oid, hist_state in state.items():
            hists._histories[oid] = ObjectHistory.load(oid, hist_state)
        return hists
