"""Transaction update-buffer entries.

A running transaction accumulates updates in a buffer (``x.updates`` in
the paper's pseudocode): ``⟨oid, DATA(data)⟩`` for regular writes and
``⟨setid, ADD(id)⟩`` / ``⟨setid, DEL(id)⟩`` for cset operations.  On commit
the buffer is appended to the per-object histories tagged with the
transaction's version.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Hashable, Iterable, List, Union

from ..errors import TypeMismatchError
from .cset import CSet
from .objects import ObjectId, ObjectKind


@dataclass(frozen=True)
class DataUpdate:
    """``⟨oid, DATA(data)⟩`` -- overwrite a regular object."""

    oid: ObjectId
    data: Any

    def __post_init__(self):
        if self.oid.kind is not ObjectKind.REGULAR:
            raise TypeMismatchError(
                "write on cset object %s; csets do not support write (§3.3)" % self.oid
            )

    def __reduce__(self):
        # Hot on the parallel executor's barrier exchanges (every
        # propagated commit record ships its update buffer).
        return (DataUpdate, (self.oid, self.data))


@dataclass(frozen=True)
class CSetAdd:
    """``⟨setid, ADD(id)⟩`` -- increment an element's count in a cset."""

    oid: ObjectId
    elem: Hashable

    def __post_init__(self):
        if self.oid.kind is not ObjectKind.CSET:
            raise TypeMismatchError("setAdd on regular object %s" % self.oid)

    def __reduce__(self):
        return (CSetAdd, (self.oid, self.elem))


@dataclass(frozen=True)
class CSetDel:
    """``⟨setid, DEL(id)⟩`` -- decrement an element's count in a cset."""

    oid: ObjectId
    elem: Hashable

    def __post_init__(self):
        if self.oid.kind is not ObjectKind.CSET:
            raise TypeMismatchError("setDel on regular object %s" % self.oid)

    def __reduce__(self):
        return (CSetDel, (self.oid, self.elem))


Update = Union[DataUpdate, CSetAdd, CSetDel]


def write_set(updates: Iterable[Update]) -> FrozenSet[ObjectId]:
    """The transaction's write-set: oids of regular DATA writes only.

    Fig 11: "The write-set of a transaction consists of all oids to which
    the transaction writes; it excludes updates to set objects" -- cset
    operations commute and are never conflict-checked.
    """
    return frozenset(u.oid for u in updates if isinstance(u, DataUpdate))


def cset_set(updates: Iterable[Update]) -> FrozenSet[ObjectId]:
    """Oids of csets the transaction modifies."""
    return frozenset(u.oid for u in updates if isinstance(u, (CSetAdd, CSetDel)))


def touched_oids(updates: Iterable[Update]) -> FrozenSet[ObjectId]:
    """Every oid the update buffer mentions (regular writes + cset ops)."""
    return frozenset(u.oid for u in updates)


def updates_for(updates: Iterable[Update], oid: ObjectId) -> List[Update]:
    """The sub-sequence of ``updates`` that target ``oid``, in order."""
    return [u for u in updates if u.oid == oid]


def last_data(updates: Iterable[Update], oid: ObjectId):
    """The most recent DATA value written to ``oid``, or a miss marker.

    Returns ``(True, data)`` if the buffer wrote oid, else ``(False, None)``
    -- a transaction's own writes shadow the snapshot (Fig 1/10 read).
    """
    found, data = False, None
    for u in updates:
        if isinstance(u, DataUpdate) and u.oid == oid:
            found, data = True, u.data
    return found, data


def apply_cset_ops(cset: CSet, updates: Iterable[Update], oid: ObjectId) -> CSet:
    """Apply the buffer's ADD/DEL operations for ``oid`` on top of ``cset``."""
    result = cset.copy()
    for u in updates:
        if isinstance(u, CSetAdd) and u.oid == oid:
            result.add(u.elem)
        elif isinstance(u, CSetDel) and u.oid == oid:
            result.rem(u.elem)
    return result
