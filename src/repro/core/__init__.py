"""Core data model: versions, csets, objects, update buffers, histories."""

from .cset import CSet
from .history import HistoryEntry, ObjectHistory, SiteHistories
from .objects import Container, ObjectId, ObjectKind
from .transaction import CommitRecord, Transaction, TxStatus, fresh_tid
from .updates import (
    CSetAdd,
    CSetDel,
    DataUpdate,
    Update,
    apply_cset_ops,
    cset_set,
    last_data,
    touched_oids,
    updates_for,
    write_set,
)
from .versions import VectorTimestamp, Version, merge_all

__all__ = [
    "CSet",
    "CSetAdd",
    "CSetDel",
    "CommitRecord",
    "Container",
    "DataUpdate",
    "HistoryEntry",
    "ObjectHistory",
    "ObjectId",
    "ObjectKind",
    "SiteHistories",
    "Transaction",
    "TxStatus",
    "Update",
    "VectorTimestamp",
    "Version",
    "apply_cset_ops",
    "cset_set",
    "fresh_tid",
    "last_data",
    "merge_all",
    "touched_oids",
    "updates_for",
    "write_set",
]
