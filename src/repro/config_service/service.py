"""The replicated configuration service (paper §5.1, §5.7).

State machine commands (proposed through Paxos, applied on every replica
in slot order):

* ``create_container`` -- register a container with its preferred site and
  replica set;
* ``remove_site`` -- begin a configuration excluding a failed site and
  reassign the preferred site of its containers (aggressive recovery);
* ``reintegrate_site`` -- bring a previously removed site back and return
  its containers.

The service tracks the active-site set and an epoch that increments on
every reconfiguration; Walter servers compare epochs to detect stale
container caches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Set

from ..core.objects import Container
from ..errors import ConfigurationError, NoSuchContainerError
from ..net import Network
from ..sim import Kernel
from .lease import LeaseTable
from .paxos import PaxosNode, make_paxos_group


@dataclass
class ContainerInfo:
    cid: str
    preferred_site: int
    replica_sites: FrozenSet[int]

    def to_container(self) -> Container:
        return Container(self.cid, self.preferred_site, self.replica_sites)


@dataclass
class ConfigState:
    """The replicated state machine's state (one copy per Paxos node)."""

    n_sites: int
    active_sites: Set[int] = field(default_factory=set)
    containers: Dict[str, ContainerInfo] = field(default_factory=dict)
    epoch: int = 0
    #: Original preferred site of containers moved by remove_site, so
    #: reintegration knows what to give back.
    displaced: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self):
        if not self.active_sites:
            self.active_sites = set(range(self.n_sites))

    def apply(self, command: Dict[str, Any]) -> None:
        op = command["op"]
        if op == "create_container":
            info = ContainerInfo(
                cid=command["cid"],
                preferred_site=command["preferred_site"],
                replica_sites=frozenset(command["replica_sites"]),
            )
            if info.preferred_site not in info.replica_sites:
                raise ConfigurationError(
                    "preferred site %d not in replica set" % info.preferred_site
                )
            self.containers[info.cid] = info
        elif op == "remove_site":
            site = command["site"]
            target = command["reassign_to"]
            self.active_sites.discard(site)
            for info in self.containers.values():
                if info.preferred_site == site:
                    self.displaced[info.cid] = site
                    replicas = set(info.replica_sites - {site}) | {target}
                    info.preferred_site = target
                    info.replica_sites = frozenset(replicas)
            self.epoch += 1
        elif op == "reintegrate_site":
            site = command["site"]
            self.active_sites.add(site)
            for cid, original in list(self.displaced.items()):
                if original == site:
                    info = self.containers[cid]
                    info.preferred_site = site
                    info.replica_sites = frozenset(set(info.replica_sites) | {site})
                    del self.displaced[cid]
            self.epoch += 1
        else:
            raise ConfigurationError("unknown config command %r" % (op,))


class ConfigurationService:
    """Paxos-replicated configuration, one replica per site."""

    def __init__(self, kernel: Kernel, network: Network, sites: List[int]):
        self.kernel = kernel
        self.sites = list(sites)
        self.states: List[ConfigState] = [
            ConfigState(n_sites=len(sites)) for _ in sites
        ]

        def factory(index: int):
            state = self.states[index]

            def apply_fn(_slot: int, command: Dict[str, Any]) -> None:
                state.apply(command)

            return apply_fn

        self.nodes: List[PaxosNode] = make_paxos_group(
            kernel, network, sites, apply_fn_factory=factory, name_prefix="config"
        )
        self.leases = LeaseTable(kernel)

    # ------------------------------------------------------------------
    # Command submission (generators -- run inside simulated processes)
    # ------------------------------------------------------------------
    def submit(self, command: Dict[str, Any], via: int = 0):
        """Propose a command through the node at site index ``via`` and
        wait until that node has applied it."""
        node = self.nodes[via]
        slot = yield from node.propose(command)
        while node.applied_upto <= slot:
            yield self.kernel.timeout(0.01)
        return slot

    def create_container(self, cid: str, preferred_site: int, replica_sites, via: int = 0):
        yield from self.submit(
            {
                "op": "create_container",
                "cid": cid,
                "preferred_site": preferred_site,
                "replica_sites": sorted(replica_sites),
            },
            via=via,
        )
        return self.states[via].containers[cid].to_container()

    def remove_site(self, site: int, reassign_to: int, via: int = 0):
        yield from self.submit(
            {"op": "remove_site", "site": site, "reassign_to": reassign_to}, via=via
        )

    def reintegrate_site(self, site: int, via: int = 0):
        yield from self.submit({"op": "reintegrate_site", "site": site}, via=via)

    # ------------------------------------------------------------------
    # Local queries (served from the replica's applied state)
    # ------------------------------------------------------------------
    def state_at(self, index: int) -> ConfigState:
        return self.states[index]

    def container_at(self, index: int, cid: str) -> Container:
        info = self.states[index].containers.get(cid)
        if info is None:
            raise NoSuchContainerError("container %r unknown at replica %d" % (cid, index))
        return info.to_container()

    def consistent_prefixes(self) -> bool:
        """All replicas applied consistent command prefixes (test oracle)."""
        logs = [node.log_prefix() for node in self.nodes]
        shortest = min(len(log) for log in logs)
        return all(log[:shortest] == logs[0][:shortest] for log in logs)
