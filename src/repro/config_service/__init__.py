"""Paxos-replicated configuration service with preferred-site leases."""

from .lease import Lease, LeaseTable
from .paxos import PaxosNode, ProposalFailed, make_paxos_group
from .service import ConfigState, ConfigurationService, ContainerInfo

__all__ = [
    "ConfigState",
    "ConfigurationService",
    "ContainerInfo",
    "Lease",
    "LeaseTable",
    "PaxosNode",
    "ProposalFailed",
    "make_paxos_group",
]
