"""Preferred-site leases (paper §5.1).

"A Walter server confirms its role in the system by obtaining a lease
from the configuration service ...  The lease assigns a set of containers
to a preferred site, and it is held by the Walter server at that site."
Servers reject operations for containers whose lease they do not hold, so
stale configuration caches cannot violate safety.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ConfigurationError
from ..sim import Kernel


@dataclass
class Lease:
    """A time-bounded grant of a scope (container group) to a holder site."""

    scope: str
    holder: int
    granted_at: float
    duration: float

    @property
    def expires_at(self) -> float:
        return self.granted_at + self.duration

    def valid(self, now: float) -> bool:
        return now < self.expires_at


class LeaseTable:
    """Grants and tracks leases; at most one valid holder per scope.

    A new holder can take a scope only when the previous lease expired or
    was released -- this is what makes preferred-site reassignment after a
    site failure safe (§5.7): the replacement site waits out the lease.
    """

    def __init__(self, kernel: Kernel, default_duration: float = 10.0):
        self.kernel = kernel
        self.default_duration = default_duration
        self._leases: Dict[str, Lease] = {}

    def grant(self, scope: str, holder: int, duration: Optional[float] = None) -> Lease:
        current = self._leases.get(scope)
        now = self.kernel.now
        if current is not None and current.holder != holder and current.valid(now):
            raise ConfigurationError(
                "scope %r leased to site %d until t=%.3f"
                % (scope, current.holder, current.expires_at)
            )
        lease = Lease(scope, holder, now, duration or self.default_duration)
        self._leases[scope] = lease
        return lease

    def renew(self, scope: str, holder: int) -> Lease:
        return self.grant(scope, holder)

    def release(self, scope: str, holder: int) -> None:
        current = self._leases.get(scope)
        if current is not None and current.holder == holder:
            del self._leases[scope]

    def holder_of(self, scope: str) -> Optional[int]:
        current = self._leases.get(scope)
        if current is not None and current.valid(self.kernel.now):
            return current.holder
        return None

    def holds(self, scope: str, holder: int) -> bool:
        return self.holder_of(scope) == holder
