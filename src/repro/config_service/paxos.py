"""Multi-decree Paxos over the simulated network.

The paper's configuration service "tolerates failures by running as a
Paxos-based state machine replicated across multiple sites" (§5.1).  This
module implements that substrate: each :class:`PaxosNode` is a combined
proposer/acceptor/learner for a log of slots; chosen commands are applied
to a caller-supplied state machine in slot order on every node.

The implementation is classic single-decree Paxos per slot (no stable
leader): a proposer runs phase 1 (prepare/promise) and phase 2
(accept/accepted) against all peers, needs a majority for each, adopts
any previously accepted value with the highest ballot, and retries with a
larger ballot on rejection.  Chosen values are disseminated with learn
messages.  Safety holds under message loss, node crashes (minority), and
concurrent proposers; liveness relies on randomized retry backoff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..net import Host, Network, RpcError
from ..sim import AllOf, Kernel

Ballot = Tuple[int, int]  # (round, node_index) -- totally ordered


@dataclass
class AcceptorSlot:
    promised: Optional[Ballot] = None
    accepted_ballot: Optional[Ballot] = None
    accepted_value: Any = None


class ProposalFailed(RpcError):
    """Could not gather a majority (partition or too many crashes)."""


class PaxosNode(Host):
    """One replica of the Paxos-replicated log."""

    #: Phase timeout before a proposer gives up on stragglers.
    PHASE_TIMEOUT = 1.0
    #: Max (prepare, accept) attempts before a propose() raises.
    MAX_ATTEMPTS = 20

    def __init__(
        self,
        kernel: Kernel,
        network: Network,
        site,
        name: str,
        index: int,
        peers: List[str],
        apply_fn: Optional[Callable[[int, Any], None]] = None,
    ):
        super().__init__(kernel, network, site, name)
        self.index = index
        self.peers = list(peers)  # includes self.address
        self.apply_fn = apply_fn
        self._acceptor: Dict[int, AcceptorSlot] = {}
        self.chosen: Dict[int, Any] = {}
        self._applied_upto = 0  # next slot to apply
        self._round = 0
        self._rng = network.streams.stream("paxos.%s" % name)

    # ------------------------------------------------------------------
    # Acceptor role
    # ------------------------------------------------------------------
    def _slot(self, slot: int) -> AcceptorSlot:
        entry = self._acceptor.get(slot)
        if entry is None:
            entry = AcceptorSlot()
            self._acceptor[slot] = entry
        return entry

    def rpc_prepare(self, slot: int, ballot: Ballot):
        ballot = tuple(ballot)
        entry = self._slot(slot)
        if entry.promised is None or ballot > entry.promised:
            entry.promised = ballot
            return {
                "ok": True,
                "accepted_ballot": entry.accepted_ballot,
                "accepted_value": entry.accepted_value,
            }
        return {"ok": False, "promised": entry.promised}

    def rpc_accept(self, slot: int, ballot: Ballot, value: Any):
        ballot = tuple(ballot)
        entry = self._slot(slot)
        if entry.promised is None or ballot >= entry.promised:
            entry.promised = ballot
            entry.accepted_ballot = ballot
            entry.accepted_value = value
            return {"ok": True}
        return {"ok": False, "promised": entry.promised}

    # ------------------------------------------------------------------
    # Learner role
    # ------------------------------------------------------------------
    def on_learn(self, src: str, slot: int, value: Any):
        self._learn(slot, value)

    def _learn(self, slot: int, value: Any) -> None:
        if slot in self.chosen:
            return
        self.chosen[slot] = value
        while self._applied_upto in self.chosen:
            if self.apply_fn is not None:
                self.apply_fn(
                    self._applied_upto, _unwrap(self.chosen[self._applied_upto])
                )
            self._applied_upto += 1

    @property
    def applied_upto(self) -> int:
        """Number of contiguous slots applied to the state machine."""
        return self._applied_upto

    def log_prefix(self) -> List[Any]:
        """The applied command sequence (for consistency assertions)."""
        return [_unwrap(self.chosen[s]) for s in range(self._applied_upto)]

    # ------------------------------------------------------------------
    # Proposer role
    # ------------------------------------------------------------------
    def _next_ballot(self) -> Ballot:
        self._round += 1
        return (self._round, self.index)

    def _majority(self) -> int:
        return len(self.peers) // 2 + 1

    def propose(self, value: Any):
        """Generator: get ``value`` chosen in some slot; returns the slot.

        The value is wrapped with a unique proposal id so that a retrying
        proposer recognizes when a competitor already got its value chosen
        (by ballot adoption) and does not choose it a second time in a
        later slot -- commands are applied exactly once.
        """
        self._pid_counter = getattr(self, "_pid_counter", 0) + 1
        wrapped = {"__pid": "%s/%d" % (self.address, self._pid_counter), "payload": value}
        for _attempt in range(self.MAX_ATTEMPTS):
            already = self._slot_of(wrapped)
            if already is not None:
                return already
            slot = self._first_unchosen()
            chosen_value = yield from self._run_instance(slot, wrapped)
            if chosen_value is _NO_MAJORITY:
                # Back off (randomized to break duels) and retry.
                yield self.kernel.timeout(0.01 + self._rng.random() * 0.05)
                continue
            self._broadcast_learn(slot, chosen_value)
            self._learn(slot, chosen_value)
            if chosen_value == wrapped:
                return slot
        raise ProposalFailed(
            "%s could not get a value chosen after %d attempts"
            % (self.address, self.MAX_ATTEMPTS)
        )

    def _slot_of(self, wrapped: Any) -> Optional[int]:
        for slot, value in self.chosen.items():
            if value == wrapped:
                return slot
        return None

    def _first_unchosen(self) -> int:
        slot = self._applied_upto
        while slot in self.chosen:
            slot += 1
        return slot

    def _run_instance(self, slot: int, value: Any):
        ballot = self._next_ballot()
        # Phase 1: prepare.
        promises = yield from self._broadcast(
            "prepare", {"slot": slot, "ballot": ballot}
        )
        granted = [p for p in promises if p and p.get("ok")]
        if len(granted) < self._majority():
            return _NO_MAJORITY
        # Adopt the highest-ballot previously accepted value, if any.
        best: Optional[Tuple[Ballot, Any]] = None
        for p in granted:
            ab = p.get("accepted_ballot")
            if ab is not None and (best is None or tuple(ab) > best[0]):
                best = (tuple(ab), p.get("accepted_value"))
        value_to_use = best[1] if best is not None else value
        # Phase 2: accept.
        acks = yield from self._broadcast(
            "accept", {"slot": slot, "ballot": ballot, "value": value_to_use}
        )
        accepted = [a for a in acks if a and a.get("ok")]
        if len(accepted) < self._majority():
            return _NO_MAJORITY
        return value_to_use

    def _broadcast(self, method: str, args: Dict[str, Any]):
        """Call every peer concurrently; None for timeouts/errors."""

        def one(peer):
            try:
                result = yield from self.call(
                    peer, method, timeout=self.PHASE_TIMEOUT, **args
                )
                return result
            except RpcError:
                return None

        procs = [
            self.kernel.spawn(one(peer), name="paxos-call:%s" % peer)
            for peer in self.peers
        ]
        results = yield AllOf(procs)
        return results

    def _broadcast_learn(self, slot: int, value: Any) -> None:
        for peer in self.peers:
            if peer != self.address:
                self.cast(peer, "learn", slot=slot, value=value)


class _NoMajority:
    __slots__ = ()

    def __repr__(self):
        return "<no majority>"


_NO_MAJORITY = _NoMajority()


def _unwrap(value: Any) -> Any:
    """Strip the proposal-id envelope added by :meth:`PaxosNode.propose`."""
    if isinstance(value, dict) and "__pid" in value and "payload" in value:
        return value["payload"]
    return value


def make_paxos_group(
    kernel: Kernel,
    network: Network,
    sites: List[int],
    apply_fn_factory: Callable[[int], Optional[Callable[[int, Any], None]]] = lambda i: None,
    name_prefix: str = "paxos",
) -> List[PaxosNode]:
    """One PaxosNode per site, fully meshed, started."""
    names = ["%s-%d" % (name_prefix, i) for i in range(len(sites))]
    nodes = []
    for i, site in enumerate(sites):
        node = PaxosNode(
            kernel,
            network,
            site,
            names[i],
            index=i,
            peers=names,
            apply_fn=apply_fn_factory(i),
        )
        node.start()
        nodes.append(node)
    return nodes
