"""Walter: transactional storage for geo-replicated systems (SOSP 2011).

A complete Python reproduction of the paper's system and evaluation:

* :mod:`repro.core` -- versions, vector timestamps, counting sets,
  object histories;
* :mod:`repro.spec` -- executable SI/PSI specifications, the Fig 8
  anomaly scenarios, and the PSI trace checker;
* :mod:`repro.server` / :mod:`repro.client` -- the distributed Walter
  implementation (fast/slow commit, asynchronous propagation, recovery);
* :mod:`repro.deployment` -- multi-site assembly on a simulated EC2
  topology;
* :mod:`repro.baselines` -- Berkeley-DB-like and Redis-like comparators;
* :mod:`repro.apps` -- WaltSocial and ReTwis;
* :mod:`repro.bench` -- the benchmark harness regenerating every table
  and figure of §8.

Quickstart::

    from repro import Deployment

    world = Deployment(n_sites=2)
    world.create_container("alice", preferred_site=0)
    client = world.new_client(0)
    oid = client.new_id("alice")

    def scenario():
        tx = client.start_tx()
        yield from client.write(tx, oid, b"hello geo-replication")
        status = yield from client.commit(tx)
        return status

    print(world.run_process(scenario()))  # COMMITTED
"""

from .client import TxHandle, WalterClient
from .core import (
    CSet,
    Container,
    ObjectId,
    ObjectKind,
    Transaction,
    TxStatus,
    VectorTimestamp,
    Version,
)
from .deployment import Deployment
from .errors import (
    ConfigurationError,
    NoSuchContainerError,
    PreferredSiteUnavailableError,
    TransactionAborted,
    TransactionStateError,
    TypeMismatchError,
    WalterError,
)
from .net import Topology
from .server import LocalConfig, ServerCosts, WalterServer

__version__ = "1.0.0"

__all__ = [
    "CSet",
    "ConfigurationError",
    "Container",
    "Deployment",
    "LocalConfig",
    "NoSuchContainerError",
    "ObjectId",
    "ObjectKind",
    "PreferredSiteUnavailableError",
    "ServerCosts",
    "Topology",
    "Transaction",
    "TransactionAborted",
    "TransactionStateError",
    "TxHandle",
    "TxStatus",
    "TypeMismatchError",
    "VectorTimestamp",
    "Version",
    "WalterClient",
    "WalterError",
    "WalterServer",
    "__version__",
]
