"""Exception hierarchy for the Walter reproduction."""


class WalterError(Exception):
    """Base class for all library errors."""


class TransactionAborted(WalterError):
    """The transaction could not commit (write-write conflict or failure)."""


class TransactionStateError(WalterError):
    """An operation was applied to a transaction in the wrong state
    (e.g. reading from a transaction that already committed)."""


class TypeMismatchError(WalterError):
    """A regular-object operation hit a cset object or vice versa.

    The paper's API separates read/write (regular) from setAdd/setDel/
    setRead (cset); a cset object does not support write because write does
    not commute with ADD (§3.3)."""


class NoSuchContainerError(WalterError):
    """Object id refers to a container the configuration does not know."""


class PreferredSiteUnavailableError(WalterError):
    """Writes to objects whose preferred site has failed are postponed
    until reconfiguration assigns a new preferred site (§5.7)."""


class ConfigurationError(WalterError):
    """Invalid deployment or container configuration."""


class SnapshotTooOldError(WalterError):
    """A snapshot read asked for state below a history's GC watermark.

    The watermark is derived from the minimum ``startVTS`` over active
    local transactions, so this can only fire for remote snapshots that
    lag the serving site's GC (§6); failing loudly beats silently
    serving a value whose superseded versions were already collected."""
