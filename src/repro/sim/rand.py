"""Deterministic random-number streams for simulation components.

Every stochastic component (network jitter, workload key choice, client
think time, ...) draws from its own named stream derived from a single root
seed.  Streams are independent, so adding a new random consumer does not
perturb the draws seen by existing components -- benchmark numbers only
move when the modelled system changes, not when unrelated code does.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name."""
    digest = hashlib.sha256(("%d/%s" % (root_seed, name)).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of named, independently-seeded ``random.Random`` streams."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.root_seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RandomStreams":
        """A child stream-space, e.g. one per site or per client."""
        return RandomStreams(derive_seed(self.root_seed, "fork/%s" % name))
