"""Conservative parallel execution of the DES substrate (DESIGN.md §12).

The deployment's sites are partitioned into clusters; each cluster's
kernel runs in its own worker (a ``spawn``-ed process, or a thread for
the in-process mode used by tests).  Sites only interact through the
simulated network, whose cross-site latency has a known positive lower
bound, so the classic conservative synchronization applies:

* lookahead ``L`` = minimum jitter-free one-way latency between sites in
  *different* clusters (:meth:`repro.net.Topology.min_crossing_latency_s`
  -- jitter in the network model is purely additive, so no cross-cluster
  message can undercut it);
* every worker advances its kernel in windows of at most ``L`` simulated
  seconds; at each window boundary (a *barrier*) the workers exchange
  the time-stamped :class:`~repro.net.Envelope`\\ s their network
  gateways collected.  A message sent at time ``s`` inside a window
  ending at ``b`` has ``deliver_at > s + L >= b``, so every envelope a
  worker receives at a barrier is strictly in its future -- no worker
  ever executes an event before all its causes are known.

Determinism: within a worker the serial kernel's (time, seq) order is
unchanged, and same-timestamp events in *different* clusters cannot
interact (any influence crosses the network and lands at least ``L``
later), so the parallel schedule is bit-identical to the serial one.
The residual ordering freedom -- envelopes from different workers
carrying the exact same delivery timestamp -- is closed by sorting each
barrier's inbox by ``(deliver_at, src_site, dst_site, link_seq)``
before scheduling.  ``tests/sim/test_parallel_executor.py`` and the
schedule-digest gate enforce the equivalence on every workload.

Workers never share Python state: each builds its own cluster-restricted
:class:`~repro.deployment.Deployment` from the same constructor kwargs
and runs the same scenario function; deployment construction burns
name/sequence counters for non-owned sites so tids, addresses and client
names are identical to the serial run's.  At the end each worker ships a
picklable payload (metrics state, span events, execution trace, scenario
result) and the parent merges them deterministically.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
import pickle
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..net import Envelope, Topology

ScenarioRef = Union[str, Callable]

#: Sentinel lookahead for a single-cluster run (no crossing links): the
#: barrier loop degenerates to one sync per ``run()`` call.
NO_LOOKAHEAD = float("inf")


class ParallelProtocolError(RuntimeError):
    """The lockstep protocol was violated: workers diverged (reached
    different barrier times or finished in different rounds), which means
    the scenario's driver code was not cluster-deterministic."""


class WorkerFailed(RuntimeError):
    """A cluster worker raised; carries the remote traceback."""


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
def partition_sites(n_sites: int, workers: int) -> Tuple[Tuple[int, ...], ...]:
    """Split ``n_sites`` site ids into ``workers`` contiguous, balanced
    clusters (workers is clamped to the site count)."""
    if n_sites < 1:
        raise ValueError("need at least one site")
    workers = max(1, min(int(workers), n_sites))
    base, extra = divmod(n_sites, workers)
    clusters: List[Tuple[int, ...]] = []
    start = 0
    for i in range(workers):
        size = base + (1 if i < extra else 0)
        clusters.append(tuple(range(start, start + size)))
        start += size
    return tuple(clusters)


@dataclass(frozen=True)
class ClusterSpec:
    """One worker's slice of a partitioned deployment."""

    cluster_id: int
    clusters: Tuple[Tuple[int, ...], ...]
    lookahead_s: float

    @property
    def owned_sites(self) -> Tuple[int, ...]:
        return self.clusters[self.cluster_id]

    @property
    def cluster_of(self) -> Dict[int, int]:
        return {
            site: cid for cid, members in enumerate(self.clusters) for site in members
        }

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)


class ClusterRuntime:
    """What a cluster-mode :class:`~repro.deployment.Deployment` holds:
    the spec plus the live exchange.  The deployment attaches the network
    gateway here so its barrier loop can drain it."""

    def __init__(self, spec: ClusterSpec, exchange):
        self.spec = spec
        self.exchange = exchange
        self.gateway = None  # set by Deployment after Network construction

    @property
    def lookahead_s(self) -> float:
        return self.spec.lookahead_s

    @property
    def owned_sites(self) -> Tuple[int, ...]:
        return self.spec.owned_sites


# ----------------------------------------------------------------------
# Lockstep engines
# ----------------------------------------------------------------------
def _route(posts: Dict[int, Tuple[float, List[Envelope]]], cluster_of: Dict[int, int]):
    """Group every worker's outbox by destination cluster."""
    inboxes: Dict[int, List[Envelope]] = {cid: [] for cid in posts}
    for _cid, (_t, outbox) in sorted(posts.items()):
        for envelope in outbox:
            inboxes[cluster_of[envelope.dst_site]].append(envelope)
    return inboxes


class _InlineEngine:
    """Barrier coordinator for the in-process (thread) mode.

    Between barriers the worker threads run concurrently, but each only
    touches its own cluster world, so execution stays deterministic; the
    engine's job is routing envelopes and detecting divergence.
    """

    def __init__(self, n_workers: int, cluster_of: Dict[int, int]):
        self._n = n_workers
        self._cluster_of = cluster_of
        self._cond = threading.Condition()
        self._posts: Dict[int, Tuple[float, List[Envelope]]] = {}
        self._done: Dict[int, Any] = {}
        self._inboxes: Dict[int, List[Envelope]] = {}
        self._generation = 0
        self._failure: Optional[BaseException] = None

    # Called with lock held.
    def _live(self) -> int:
        return self._n - len(self._done)

    def _maybe_advance(self) -> None:
        if self._failure is not None:
            self._cond.notify_all()
            return
        if self._posts and len(self._posts) == self._live():
            times = {t for t, _outbox in self._posts.values()}
            if len(times) != 1:
                self._failure = ParallelProtocolError(
                    "workers diverged: barrier times %r" % (sorted(times),)
                )
            elif self._done and self._generation > 0:
                # Workers run identical driver code, so they must finish
                # after the same number of barriers -- a partial finish
                # means divergence.  (Finishing before the first barrier
                # is fine only if everyone does, handled above.)
                self._failure = ParallelProtocolError(
                    "workers %r finished while %r still syncing"
                    % (sorted(self._done), sorted(self._posts))
                )
            else:
                self._inboxes.update(_route(self._posts, self._cluster_of))
                self._posts.clear()
                self._generation += 1
            self._cond.notify_all()
        elif self._live() == 0:
            self._cond.notify_all()

    def sync(self, cluster_id: int, t: float, outbox: List[Envelope]) -> List[Envelope]:
        with self._cond:
            if self._failure is not None:
                raise self._failure
            self._posts[cluster_id] = (t, outbox)
            generation = self._generation
            self._maybe_advance()
            while (
                self._generation == generation
                and self._failure is None
            ):
                self._cond.wait()
            if self._failure is not None:
                raise self._failure
            return self._inboxes.pop(cluster_id, [])

    def finish(self, cluster_id: int, payload: Any) -> None:
        with self._cond:
            self._done[cluster_id] = payload
            if cluster_id in self._posts:
                del self._posts[cluster_id]
            self._maybe_advance()

    def fail(self, cluster_id: int, exc: BaseException) -> None:
        with self._cond:
            if self._failure is None:
                self._failure = exc
            self._cond.notify_all()

    def results(self) -> List[Any]:
        with self._cond:
            if self._failure is not None:
                raise self._failure
            if len(self._done) != self._n:
                raise ParallelProtocolError(
                    "only %d/%d workers finished" % (len(self._done), self._n)
                )
            return [self._done[cid] for cid in sorted(self._done)]


class _InlineExchange:
    """One worker's handle onto the inline engine."""

    def __init__(self, engine: _InlineEngine, cluster_id: int):
        self._engine = engine
        self._cluster_id = cluster_id

    def sync(self, t: float, outbox: List[Envelope]) -> List[Envelope]:
        return self._engine.sync(self._cluster_id, t, outbox)


class _ReplayExchange:
    """Scripted exchange for the sequential critical-path replay.

    Feeds a worker the exact per-barrier inbound blobs recorded during a
    live parallel run, so the worker re-executes its identical schedule
    *alone* -- no sibling workers competing for cores or caches.  The
    outbox is still pickled (and discarded) so the replayed CPU time
    includes the worker's real serialization cost; only pipe I/O and
    barrier waiting are absent.
    """

    def __init__(self, rounds: List[List[bytes]], cluster_of: Dict[int, int]):
        self._rounds = rounds
        self._i = 0
        self._cluster_of = cluster_of

    def sync(self, t: float, outbox: List[Envelope]) -> List[Envelope]:
        if self._i >= len(self._rounds):
            raise ParallelProtocolError(
                "replay exhausted after %d barriers (worker diverged from "
                "the recorded run)" % self._i
            )
        grouped: Dict[int, List[Envelope]] = {}
        for envelope in outbox:
            grouped.setdefault(self._cluster_of[envelope.dst_site], []).append(envelope)
        for envelopes in grouped.values():
            pickle.dumps(envelopes, pickle.HIGHEST_PROTOCOL)
        blobs = self._rounds[self._i]
        self._i += 1
        inbox: List[Envelope] = []
        for blob in blobs:
            inbox.extend(pickle.loads(blob))
        return inbox


class _PipeExchange:
    """One worker's handle onto the parent process, over a pipe.

    Envelopes are pickled *here*, one batch per destination cluster, and
    shipped as opaque byte blobs: the parent routes the blobs without
    deserializing them, so each envelope costs exactly one ``dumps`` (in
    the sender, parallel across workers) and one ``loads`` (in the
    receiver) instead of an extra round trip through the parent's
    pickler -- which would otherwise be the serial bottleneck of the
    whole run."""

    def __init__(self, conn, cluster_of: Dict[int, int]):
        self._conn = conn
        self._cluster_of = cluster_of

    def sync(self, t: float, outbox: List[Envelope]) -> List[Envelope]:
        grouped: Dict[int, List[Envelope]] = {}
        for envelope in outbox:
            grouped.setdefault(self._cluster_of[envelope.dst_site], []).append(envelope)
        blobs = {
            dst: pickle.dumps(envelopes, pickle.HIGHEST_PROTOCOL)
            for dst, envelopes in grouped.items()
        }
        self._conn.send(("sync", t, blobs))
        kind, data = self._conn.recv()
        if kind == "abort":
            raise WorkerFailed("aborted by parent: %s" % (data,))
        if kind != "inbox":
            raise ParallelProtocolError("unexpected parent message %r" % (kind,))
        inbox: List[Envelope] = []
        for blob in data:
            inbox.extend(pickle.loads(blob))
        return inbox


# ----------------------------------------------------------------------
# Worker body
# ----------------------------------------------------------------------
def resolve_scenario(ref: ScenarioRef) -> Callable:
    """Resolve a scenario: either a module-level callable or a
    ``"package.module:function"`` string (the spawn-safe form)."""
    if callable(ref):
        return ref
    module_name, _, attr = ref.partition(":")
    if not attr:
        raise ValueError("scenario ref must look like 'pkg.module:function', got %r" % ref)
    obj = importlib.import_module(module_name)
    for part in attr.split("."):
        obj = getattr(obj, part)
    return obj


def scenario_ref(fn: ScenarioRef) -> str:
    """The spawn-safe string form of a scenario callable."""
    if isinstance(fn, str):
        return fn
    ref = "%s:%s" % (fn.__module__, fn.__qualname__)
    if resolve_scenario(ref) is not fn:  # lambdas, closures, methods
        raise ValueError(
            "scenario %r is not a module-level function; parallel workers "
            "cannot import it" % (fn,)
        )
    return ref


def collect_world_payload(world, scenario_result: Any = None) -> Dict[str, Any]:
    """Everything the parent needs from one worker, picklable."""
    owned = sorted(world.owned_sites())
    for site in owned:
        world.servers[site]._refresh_gc_gauges()
    tracer = world.obs.tracer
    return {
        "owned_sites": owned,
        "now": world.kernel.now,
        "events_executed": world.kernel.events_executed,
        "metrics": world.obs.registry.dump_state(),
        "access_profile": {
            site: world.servers[site].profiler.as_dict() for site in owned
        },
        "span_events": (
            [event.to_dict() for event in tracer.events()] if tracer is not None else None
        ),
        "trace": world.trace,
        "abandoned_versions": set(world.abandoned_versions),
        "scenario": scenario_result,
    }


def _run_cluster(scenario: ScenarioRef, deploy_kwargs, params, spec: ClusterSpec, exchange):
    from ..deployment import Deployment

    # Debug aid: REPRO_PARALLEL_PROFILE_DIR=<dir> cProfiles every worker
    # (spawn processes included) and drops cluster-<id>.pstats files.
    profile_dir = os.environ.get("REPRO_PARALLEL_PROFILE_DIR")
    profiler = None
    if profile_dir:
        import cProfile

        # Thread-CPU timer: profile numbers stay meaningful on a loaded
        # machine where wall time is mostly descheduling.
        profiler = cProfile.Profile(time.thread_time)
        profiler.enable()

    # Resolve (= import) the scenario module *before* starting the CPU
    # clock: the serial benchmarks import at module load, outside their
    # timed window, so charging import cost to the worker would skew the
    # serial-vs-parallel critical-path comparison.  Deployment build and
    # scenario execution stay inside the window on both sides.
    fn = resolve_scenario(scenario)
    cpu_start = time.thread_time()
    wall_start = time.perf_counter()
    runtime = ClusterRuntime(spec, exchange)
    world = Deployment(cluster=runtime, **deploy_kwargs)
    result = fn(world, **(params or {}))
    payload = collect_world_payload(world, result)
    # CPU seconds this worker actually consumed (thread time excludes
    # barrier waits AND descheduling, so on a core-starved machine the
    # per-worker maximum still estimates the multi-core critical path).
    payload["cpu_s"] = round(time.thread_time() - cpu_start, 6)
    payload["wall_s"] = round(time.perf_counter() - wall_start, 6)
    if profiler is not None:
        profiler.disable()
        profiler.dump_stats(
            os.path.join(profile_dir, "cluster-%d.pstats" % spec.cluster_id)
        )
    return payload


def _mp_worker_main(conn, scenario, deploy_kwargs, params, spec) -> None:
    try:
        exchange = _PipeExchange(conn, spec.cluster_of)
        payload = _run_cluster(scenario, deploy_kwargs, params, spec, exchange)
        conn.send(("done", payload))
    except BaseException:  # noqa: BLE001 - shipped to the parent verbatim
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:  # noqa: BLE001 - parent already gone
            pass
    finally:
        conn.close()


def _replay_worker_main(conn, scenario, deploy_kwargs, params, spec, rounds) -> None:
    try:
        exchange = _ReplayExchange(rounds, spec.cluster_of)
        payload = _run_cluster(scenario, deploy_kwargs, params, spec, exchange)
        conn.send(("done", payload))
    except BaseException:  # noqa: BLE001 - shipped to the parent verbatim
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:  # noqa: BLE001 - parent already gone
            pass
    finally:
        conn.close()


def _run_replay_solo(scenario, deploy_kwargs, params, spec, rounds) -> Dict[str, Any]:
    """Re-run one cluster alone in a fresh process, scripted from the
    recorded barrier traffic.

    Each worker's simulated schedule is fully determined by its inbound
    envelopes (conservative synchronization), so the replay executes the
    byte-identical schedule -- but with sole use of a core and a cold,
    compact heap.  Its ``cpu_s`` is therefore the honest per-worker cost
    on a machine with at least one core per worker; the live run's
    concurrent ``cpu_s`` additionally pays for co-scheduling cache
    pollution whenever workers time-slice the same cores.
    """
    import multiprocessing

    ctx = multiprocessing.get_context("spawn")
    parent_conn, child_conn = ctx.Pipe()
    proc = ctx.Process(
        target=_replay_worker_main,
        args=(child_conn, scenario_ref(scenario), deploy_kwargs, params, spec, rounds),
        name="replay-%d" % spec.cluster_id,
    )
    proc.start()
    child_conn.close()
    try:
        msg = parent_conn.recv()
    except EOFError:
        msg = ("error", "replay worker died without a result")
    finally:
        proc.join()
        parent_conn.close()
    if msg[0] != "done":
        raise WorkerFailed(
            "replay of cluster %d failed:\n%s" % (spec.cluster_id, msg[1])
        )
    return msg[1]


# ----------------------------------------------------------------------
# Parent orchestration
# ----------------------------------------------------------------------
def _run_inline(scenario, deploy_kwargs, params, specs) -> List[Dict[str, Any]]:
    engine = _InlineEngine(len(specs), specs[0].cluster_of)

    def body(spec: ClusterSpec) -> None:
        try:
            payload = _run_cluster(
                scenario, deploy_kwargs, params, spec, _InlineExchange(engine, spec.cluster_id)
            )
            engine.finish(spec.cluster_id, payload)
        except BaseException as exc:  # noqa: BLE001 - surfaced via engine
            engine.fail(spec.cluster_id, exc)

    threads = [
        threading.Thread(target=body, args=(spec,), name="cluster-%d" % spec.cluster_id)
        for spec in specs
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return engine.results()


def _run_mp(
    scenario, deploy_kwargs, params, specs, record=None
) -> List[Dict[str, Any]]:
    import multiprocessing

    ctx = multiprocessing.get_context("spawn")
    ref = scenario_ref(scenario)
    conns = []
    procs = []
    for spec in specs:
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_mp_worker_main,
            args=(child_conn, ref, deploy_kwargs, params, spec),
            name="cluster-%d" % spec.cluster_id,
        )
        proc.start()
        child_conn.close()
        conns.append(parent_conn)
        procs.append(proc)

    results: Dict[int, Any] = {}
    failure: Optional[BaseException] = None
    live = list(range(len(specs)))
    try:
        while live and failure is None:
            posts: Dict[int, Tuple[float, Dict[int, bytes]]] = {}
            done_now: List[int] = []
            for cid in live:
                try:
                    msg = conns[cid].recv()
                except EOFError:
                    failure = WorkerFailed("worker %d died without a result" % cid)
                    break
                if msg[0] == "error":
                    failure = WorkerFailed("worker %d failed:\n%s" % (cid, msg[1]))
                    break
                if msg[0] == "done":
                    results[cid] = msg[1]
                    done_now.append(cid)
                elif msg[0] == "sync":
                    posts[cid] = (msg[1], msg[2])
                else:
                    failure = ParallelProtocolError("unexpected %r from worker %d" % (msg[0], cid))
                    break
            if failure is not None:
                break
            if posts and done_now:
                failure = ParallelProtocolError(
                    "workers %r finished while %r still syncing"
                    % (done_now, sorted(posts))
                )
                break
            if done_now:
                live = [cid for cid in live if cid not in results]
                continue
            times = {t for t, _ in posts.values()}
            if len(times) != 1:
                failure = ParallelProtocolError(
                    "workers diverged: barrier times %r" % (sorted(times),)
                )
                break
            # Route the pre-pickled blobs verbatim (sender order is fixed
            # by the sorted iteration, but delivery order doesn't matter:
            # the receiving deployment sorts its whole inbox by the
            # envelope sort key before scheduling).
            inboxes: Dict[int, List[bytes]] = {cid: [] for cid in posts}
            for src in sorted(posts):
                for dst, blob in sorted(posts[src][1].items()):
                    if dst not in inboxes:
                        failure = ParallelProtocolError(
                            "worker %d posted a blob for unknown cluster %d" % (src, dst)
                        )
                        break
                    inboxes[dst].append(blob)
                if failure is not None:
                    break
            if failure is not None:
                break
            if record is not None:
                # Keep each cluster's inbound blobs per barrier round so
                # the run can be replayed solo (see _run_replay_solo).
                for cid in posts:
                    record[cid].append(inboxes.get(cid, []))
            for cid in posts:
                conns[cid].send(("inbox", inboxes.get(cid, [])))
    finally:
        if failure is not None:
            for cid in range(len(specs)):
                try:
                    conns[cid].send(("abort", str(failure)))
                except (OSError, ValueError, BrokenPipeError):
                    pass
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():
                proc.terminate()
                proc.join()
        for conn in conns:
            conn.close()
    if failure is not None:
        raise failure
    return [results[cid] for cid in sorted(results)]


def run_scenario(
    scenario: ScenarioRef,
    deploy_kwargs: Optional[Dict[str, Any]] = None,
    params: Optional[Dict[str, Any]] = None,
    workers: int = 2,
    mode: str = "auto",
) -> "ParallelResult":
    """Run ``scenario(world, **params)`` on a deployment partitioned into
    ``workers`` per-site clusters; returns the merged result.

    ``mode``: ``"mp"`` (one spawn-ed process per cluster -- the fast
    path), ``"inline"`` (threads in this process, deterministic and
    cheap to start -- what the equivalence tests use), ``"auto"``
    (mp when there is more than one cluster), or ``"mp-replay"`` (mp,
    then sequentially replay each cluster solo in a fresh process from
    the recorded barrier traffic; adds ``solo_cpu_s`` per worker -- the
    contention-free critical-path measurement used by the wall-clock
    bench on core-starved machines).

    Restrictions (enforced or documented in DESIGN.md §12): the scenario
    must drive the world only through ``world.run(until=...)`` /
    ``settle`` and deployment APIs that are cluster-deterministic; no
    chaos faults, no configuration changes after the world is built, and
    the span workload must fit the tracer capacity.
    """
    deploy_kwargs = dict(deploy_kwargs or {})
    for forbidden in ("cluster", "executor", "workers"):
        deploy_kwargs.pop(forbidden, None)
    topology = deploy_kwargs.get("topology") or Topology.ec2(
        deploy_kwargs.get("n_sites", 4)
    )
    shards = int(deploy_kwargs.get("shards", 1) or 1)
    if shards > 1 and getattr(topology, "shards", 1) != shards:
        # Expand eagerly so clusters are cut in the *logical* site space
        # but aligned to base-site boundaries: co-located shard servers
        # talk over LAN RTTs, which would collapse the lookahead if they
        # ever landed in different clusters.
        topology = Topology.sharded(topology, shards)
    deploy_kwargs["topology"] = topology
    n_base = len(topology) // shards
    base_clusters = partition_sites(n_base, workers)
    clusters = tuple(
        tuple(b * shards + k for b in members for k in range(shards))
        for members in base_clusters
    )
    lookahead = (
        topology.min_crossing_latency_s(clusters) if len(clusters) > 1 else NO_LOOKAHEAD
    )
    specs = [
        ClusterSpec(cid, clusters, lookahead) for cid in range(len(clusters))
    ]
    if mode == "auto":
        mode = "mp" if len(clusters) > 1 else "inline"
    live_start = time.perf_counter()
    if mode == "inline":
        payloads = _run_inline(scenario, deploy_kwargs, params, specs)
    elif mode == "mp":
        payloads = _run_mp(scenario, deploy_kwargs, params, specs)
    elif mode == "mp-replay":
        record: Dict[int, List[List[bytes]]] = {spec.cluster_id: [] for spec in specs}
        payloads = _run_mp(scenario, deploy_kwargs, params, specs, record=record)
        live_wall = time.perf_counter() - live_start
        for spec, payload in zip(specs, payloads):
            solo = _run_replay_solo(
                scenario, deploy_kwargs, params, spec, record[spec.cluster_id]
            )
            if solo["events_executed"] != payload["events_executed"]:
                raise ParallelProtocolError(
                    "solo replay of cluster %d executed %d events, live run %d"
                    % (
                        spec.cluster_id,
                        solo["events_executed"],
                        payload["events_executed"],
                    )
                )
            payload["solo_cpu_s"] = solo["cpu_s"]
    else:
        raise ValueError(
            "mode must be 'auto', 'inline', 'mp' or 'mp-replay', got %r" % (mode,)
        )
    result = ParallelResult(payloads)
    # Wall-clock of the *live* executor run only -- the mp-replay mode's
    # sequential solo replays happen after this window, so benchmarks can
    # report live wall-clock and contention-free critical path separately.
    result.live_wall_s = (
        live_wall if mode == "mp-replay" else time.perf_counter() - live_start
    )
    return result


# ----------------------------------------------------------------------
# Merging + canonical digests
# ----------------------------------------------------------------------
def serial_payloads(world, scenario_result: Any = None) -> "ParallelResult":
    """Wrap a serial run in the same result type the parallel executor
    produces, so the dual-executor gate compares like with like."""
    return ParallelResult([collect_world_payload(world, scenario_result)])


def _canonical_span_line(event: Dict[str, Any]) -> str:
    stripped = {k: v for k, v in event.items() if k not in ("seq", "parent")}
    return json.dumps(stripped, sort_keys=True, separators=(",", ":"))


def _read_sort_key(read) -> Tuple:
    value = read.value
    if isinstance(value, dict):
        value_repr = repr(sorted(value.items(), key=repr))
    else:
        value_repr = repr(value)
    return (read.tid, read.site, repr(read.oid), repr(read.start_vts), value_repr)


class ParallelResult:
    """Deterministically merged view over per-worker payloads.

    Counters/histograms are additive across workers, per-site gauges and
    commit orders come from the owning worker, and span events are
    canonicalized (tracer-local ``seq``/``parent`` dropped, sorted by
    content) so a serial run and any worker count produce byte-identical
    digests.
    """

    def __init__(self, payloads: Sequence[Dict[str, Any]]):
        if not payloads:
            raise ValueError("no worker payloads")
        self.payloads = list(payloads)
        #: Wall seconds of the live executor run (set by run_scenario;
        #: excludes mp-replay's sequential solo replays).
        self.live_wall_s: Optional[float] = None
        nows = {round(p["now"], 12) for p in self.payloads}
        if len(nows) != 1:
            raise ParallelProtocolError("workers ended at different times: %r" % sorted(nows))

    @property
    def now(self) -> float:
        return self.payloads[0]["now"]

    @property
    def events_executed(self) -> int:
        return sum(p["events_executed"] for p in self.payloads)

    @property
    def workers(self) -> int:
        return len(self.payloads)

    @property
    def scenario_results(self) -> List[Any]:
        return [p["scenario"] for p in self.payloads]

    @property
    def worker_cpu_s(self) -> List[float]:
        """Per-worker CPU seconds (thread time: excludes barrier waits
        and descheduling).  ``max()`` of these estimates the multi-core
        critical path even when the measuring machine is core-starved."""
        return [p.get("cpu_s", 0.0) for p in self.payloads]

    @property
    def solo_cpu_s(self) -> Optional[List[float]]:
        """Per-worker CPU seconds from the contention-free solo replay
        (mode ``"mp-replay"`` only, else None).  ``max()`` of these is
        the multi-core critical path unpolluted by workers time-slicing
        shared cores, so ``serial_cpu / max(solo_cpu_s)`` projects the
        speedup on a machine with >= one core per worker."""
        values = [p.get("solo_cpu_s") for p in self.payloads]
        if any(v is None for v in values):
            return None
        return values

    @property
    def abandoned_versions(self) -> set:
        merged: set = set()
        for p in self.payloads:
            merged |= p.get("abandoned_versions") or set()
        return merged

    def metrics_snapshot(self) -> Dict[str, Any]:
        from ..obs.metrics import MetricsRegistry

        registry = MetricsRegistry.merge_states([p["metrics"] for p in self.payloads])
        snap = registry.snapshot()
        profile: Dict[int, Any] = {}
        for p in self.payloads:
            profile.update(p["access_profile"])
        snap["access_profile"] = {site: profile[site] for site in sorted(profile)}
        return snap

    def span_lines(self) -> Optional[List[str]]:
        """Canonical (sorted) span stream, or None when tracing was off."""
        lines: List[str] = []
        for p in self.payloads:
            if p["span_events"] is None:
                return None
            lines.extend(_canonical_span_line(e) for e in p["span_events"])
        lines.sort()
        return lines

    def canonical_digest(self) -> str:
        """SHA-256 over the canonical span stream plus the final clock --
        the quantity the dual-executor gate pins equal across executors."""
        lines = self.span_lines()
        if lines is None:
            raise ValueError("canonical digest requires tracing enabled")
        blob = "\n".join(lines) + "\nnow=%.9f" % self.now
        return hashlib.sha256(blob.encode()).hexdigest()

    def merged_trace(self):
        """Union of the per-worker :class:`~repro.spec.checker.ExecutionTrace`
        slices: transactions by tid (preload duplicates collapse), each
        site's commit order from its owning worker, reads in canonical
        order."""
        from ..spec.checker import ExecutionTrace

        parts = [p["trace"] for p in self.payloads]
        if any(part is None for part in parts):
            return None
        merged = ExecutionTrace(n_sites=parts[0].n_sites)
        for part in parts:
            merged.transactions.update(part.transactions)
            for site, order in part.site_commit_order.items():
                merged.site_commit_order.setdefault(site, []).extend(order)
            merged.reads.extend(part.reads)
        merged.reads.sort(key=_read_sort_key)
        return merged


def trace_fingerprint(trace) -> Dict[str, Any]:
    """Canonical, order-insensitive fingerprint of an execution trace,
    comparable across executors (reads sorted the same way the merge
    sorts them)."""
    return {
        "transactions": {
            tid: (
                tx.site,
                repr(tx.start_vts),
                repr(tx.version),
                tuple(repr(u) for u in tx.updates),
                tuple(sorted(repr(oid) for oid in tx.write_set)),
            )
            for tid, tx in sorted(trace.transactions.items())
        },
        "site_commit_order": {
            site: tuple(repr(v) for v in order)
            for site, order in sorted(trace.site_commit_order.items())
        },
        "reads": tuple(sorted(_read_sort_key(read) for read in trace.reads)),
    }


def canonical_verdict(trace, abandoned=None) -> List[str]:
    """PSI checker verdict over a canonically-ordered trace: the list of
    violation strings (empty = clean), identical for serial and merged
    parallel traces of the same execution."""
    from ..spec.checker import ExecutionTrace, check_trace

    ordered = ExecutionTrace(n_sites=trace.n_sites)
    ordered.transactions = dict(trace.transactions)
    ordered.site_commit_order = {s: list(o) for s, o in trace.site_commit_order.items()}
    ordered.reads = sorted(trace.reads, key=_read_sort_key)
    return [str(v) for v in check_trace(ordered, abandoned)]
