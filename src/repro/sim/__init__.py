"""Discrete-event simulation substrate (kernel, resources, RNG streams)."""

from .kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Kernel,
    Process,
    SimError,
    Timeout,
    Waitable,
    gc_paused,
)
from .rand import RandomStreams, derive_seed
from .resources import Lock, Resource, Semaphore, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Kernel",
    "Lock",
    "Process",
    "RandomStreams",
    "Resource",
    "Semaphore",
    "SimError",
    "Store",
    "Timeout",
    "Waitable",
    "derive_seed",
    "gc_paused",
]
