"""Synchronization and queueing primitives for simulated processes.

These are the building blocks the Walter server uses to model contention:
the server CPU is a :class:`Resource` with a service time per operation,
the commit path serializes on a :class:`Lock` (the paper notes commit
throughput is bounded by "a highly contended lock" inside the server), and
message queues between components are :class:`Store` instances.

All primitives are FIFO-fair: waiters are served in arrival order, which
keeps runs deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from .kernel import Event, Kernel, SimError


class Lock:
    """A FIFO mutex for simulated processes.

    Usage::

        yield lock.acquire()
        try:
            ...
        finally:
            lock.release()
    """

    def __init__(self, kernel: Kernel, name: str = ""):
        self.kernel = kernel
        self.name = name
        self._event_name = "lock:%s" % name
        self._held = False
        self._waiters: Deque[Event] = deque()

    @property
    def held(self) -> bool:
        return self._held

    def acquire(self) -> Event:
        event = Event(self.kernel, self._event_name)
        if not self._held and not self._waiters:
            self._held = True
            event.trigger(None)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if not self._held:
            raise SimError("release of unheld lock %r" % (self.name,))
        if self._waiters:
            self._waiters.popleft().trigger(None)
        else:
            self._held = False


class Resource:
    """A counted resource with FIFO admission (models server CPU cores).

    ``use(duration)`` is a generator that acquires a slot, holds it for
    ``duration`` simulated seconds, and releases it -- the standard way to
    model a service time at a contended station.
    """

    def __init__(self, kernel: Kernel, capacity: int, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.kernel = kernel
        self.capacity = capacity
        self.name = name
        self._event_name = "res:%s" % name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        self.total_busy_time = 0.0
        self._busy_since: Optional[float] = None

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        event = Event(self.kernel, self._event_name)
        if self._in_use < self.capacity and not self._waiters:
            self._grant(event)
        else:
            self._waiters.append(event)
        return event

    def _grant(self, event: Event) -> None:
        if self._in_use == 0:
            self._busy_since = self.kernel.now
        self._in_use += 1
        event.trigger(None)

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimError("release of idle resource %r" % (self.name,))
        self._in_use -= 1
        if self._in_use == 0 and self._busy_since is not None:
            self.total_busy_time += self.kernel.now - self._busy_since
            self._busy_since = None
        if self._waiters and self._in_use < self.capacity:
            self._grant(self._waiters.popleft())

    def use(self, duration: float) -> Generator:
        """Generator: hold one slot for ``duration`` simulated seconds."""
        yield self.acquire()
        try:
            yield self.kernel.timeout(duration)
        finally:
            self.release()

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` during which the resource was busy."""
        busy = self.total_busy_time
        if self._busy_since is not None:
            busy += self.kernel.now - self._busy_since
        return busy / elapsed if elapsed > 0 else 0.0


class Store:
    """An unbounded FIFO queue between processes.

    ``put`` never blocks; ``get`` returns an Event that fires with the next
    item.  This is the mailbox abstraction used for network delivery and
    for the disk's group-commit batch queue.
    """

    def __init__(self, kernel: Kernel, name: str = ""):
        self.kernel = kernel
        self.name = name
        self._event_name = "store:%s" % name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().trigger(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = Event(self.kernel, self._event_name)
        if self._items:
            event.trigger(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def get_nowait(self) -> Any:
        if not self._items:
            raise SimError("store %r is empty" % (self.name,))
        return self._items.popleft()

    def drain(self) -> list:
        """Remove and return all queued items without blocking."""
        items = list(self._items)
        self._items.clear()
        return items


class Semaphore:
    """A counting semaphore; ``acquire`` blocks when the count hits zero."""

    def __init__(self, kernel: Kernel, value: int = 1, name: str = ""):
        if value < 0:
            raise ValueError("semaphore value must be >= 0")
        self.kernel = kernel
        self.name = name
        self._event_name = "sem:%s" % name
        self._value = value
        self._waiters: Deque[Event] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> Event:
        event = Event(self.kernel, self._event_name)
        if self._value > 0 and not self._waiters:
            self._value -= 1
            event.trigger(None)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().trigger(None)
        else:
            self._value += 1
