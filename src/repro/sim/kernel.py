"""Deterministic discrete-event simulation kernel.

The kernel is the substrate on which every distributed component of the
reproduction runs: Walter servers, clients, the configuration service, the
network, and the disk model are all simulated processes scheduled here.

Processes are Python generators that ``yield`` *waitables*:

* :class:`Timeout` -- resume after a simulated delay,
* :class:`Event` -- resume when another process triggers the event,
* :class:`Process` -- resume when another process finishes (a join); the
  value of the ``yield`` expression is the joined process's return value.

The kernel is strictly deterministic: events scheduled for the same
simulated time fire in the order they were scheduled (a monotonic sequence
number breaks ties), so a run with a fixed seed is bit-for-bit repeatable.
This property is load-bearing for the test suite, which asserts exact
transaction orderings, and for the benchmark harness, whose numbers must be
stable across runs.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimError(Exception):
    """Base class for simulation kernel errors."""


class Interrupt(SimError):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Waitable:
    """Something a process may ``yield`` on.

    Subclasses implement :meth:`_subscribe`, which registers a callback to
    be invoked (exactly once) with ``(value, exception)`` when the waitable
    completes.  If the waitable has already completed, the callback fires on
    the next kernel step at the current simulated time.
    """

    def _subscribe(self, kernel: "Kernel", callback: Callable[[Any, Optional[BaseException]], None]) -> None:
        raise NotImplementedError


class Timeout(Waitable):
    """Resume the yielding process after ``delay`` simulated seconds."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise ValueError("timeout delay must be >= 0, got %r" % (delay,))
        self.delay = delay
        self.value = value

    def _subscribe(self, kernel: "Kernel", callback) -> None:
        kernel.call_after(self.delay, callback, self.value, None)


class Event(Waitable):
    """A one-shot event that processes can wait on.

    ``trigger(value)`` wakes every waiter with ``value``; ``fail(exc)``
    raises ``exc`` inside every waiter.  Triggering twice is an error --
    distributed-protocol code that may race to complete an event should use
    :meth:`trigger_once`.
    """

    __slots__ = ("kernel", "_done", "_value", "_exc", "_callbacks", "name")

    def __init__(self, kernel: "Kernel", name: str = ""):
        self.kernel = kernel
        self.name = name
        self._done = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._callbacks: List[Callable] = []

    @property
    def triggered(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimError("event %r not yet triggered" % (self.name,))
        return self._value

    def trigger(self, value: Any = None) -> None:
        if self._done:
            raise SimError("event %r triggered twice" % (self.name,))
        self._done = True
        self._value = value
        self._flush()

    def trigger_once(self, value: Any = None) -> bool:
        """Trigger if not already done; return True if this call won."""
        if self._done:
            return False
        self.trigger(value)
        return True

    def fail(self, exc: BaseException) -> None:
        if self._done:
            raise SimError("event %r triggered twice" % (self.name,))
        self._done = True
        self._exc = exc
        self._flush()

    def _flush(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            self.kernel.call_after(0.0, cb, self._value, self._exc)

    def _subscribe(self, kernel: "Kernel", callback) -> None:
        if self._done:
            kernel.call_after(0.0, callback, self._value, self._exc)
        else:
            self._callbacks.append(callback)


class AllOf(Waitable):
    """Completes when every child waitable completes; value is the list of
    child values in order.  The first child failure fails the whole group."""

    def __init__(self, children: Iterable[Waitable]):
        self.children = list(children)

    def _subscribe(self, kernel: "Kernel", callback) -> None:
        children = self.children
        if not children:
            kernel.call_after(0.0, callback, [], None)
            return
        results: List[Any] = [None] * len(children)
        state = {"pending": len(children), "failed": False}

        def make_child_cb(index: int):
            def child_cb(value, exc):
                if state["failed"]:
                    return
                if exc is not None:
                    state["failed"] = True
                    callback(None, exc)
                    return
                results[index] = value
                state["pending"] -= 1
                if state["pending"] == 0:
                    callback(results, None)

            return child_cb

        for i, child in enumerate(children):
            child._subscribe(kernel, make_child_cb(i))


class AnyOf(Waitable):
    """Completes when the first child completes; value is ``(index, value)``."""

    def __init__(self, children: Iterable[Waitable]):
        self.children = list(children)
        if not self.children:
            raise ValueError("AnyOf requires at least one child")

    def _subscribe(self, kernel: "Kernel", callback) -> None:
        state = {"done": False}

        def make_child_cb(index: int):
            def child_cb(value, exc):
                if state["done"]:
                    return
                state["done"] = True
                if exc is not None:
                    callback(None, exc)
                else:
                    callback((index, value), None)

            return child_cb

        for i, child in enumerate(self.children):
            child._subscribe(kernel, make_child_cb(i))


class Process(Waitable):
    """A running simulated process wrapping a generator.

    Yield a Process to join it.  ``interrupt()`` throws :class:`Interrupt`
    into the generator at the current simulated time.
    """

    __slots__ = ("kernel", "name", "_gen", "_done", "_value", "_exc", "_joiners", "_interrupted")

    def __init__(self, kernel: "Kernel", gen: Generator, name: str = ""):
        self.kernel = kernel
        self.name = name or getattr(gen, "__name__", "process")
        self._gen = gen
        self._done = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._joiners: List[Callable] = []
        self._interrupted = False

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimError("process %r still running" % (self.name,))
        if self._exc is not None:
            raise self._exc
        return self._value

    def interrupt(self, cause: Any = None) -> None:
        """Throw Interrupt into the process on the next kernel step."""
        if self._done:
            return
        self._interrupted = True
        self.kernel.call_after(0.0, self._step, None, Interrupt(cause))

    def _start(self) -> None:
        self.kernel.call_after(0.0, self._step, None, None)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._done:
            return
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None), None)
            return
        except BaseException as err:  # noqa: BLE001 - propagated to joiners
            self._finish(None, err)
            return
        if not isinstance(target, Waitable):
            self._finish(
                None,
                SimError(
                    "process %r yielded %r, which is not a Waitable"
                    % (self.name, target)
                ),
            )
            return
        target._subscribe(self.kernel, self._step)

    def _finish(self, value: Any, exc: Optional[BaseException]) -> None:
        self._done = True
        self._value = value
        self._exc = exc
        joiners, self._joiners = self._joiners, []
        if exc is not None and not joiners:
            self.kernel._report_orphan_failure(self, exc)
        for cb in joiners:
            self.kernel.call_after(0.0, cb, value, exc)

    def _subscribe(self, kernel: "Kernel", callback) -> None:
        if self._done:
            kernel.call_after(0.0, callback, self._value, self._exc)
        else:
            self._joiners.append(callback)

    def __repr__(self) -> str:
        state = "done" if self._done else "running"
        return "<Process %s (%s)>" % (self.name, state)


class Kernel:
    """The discrete-event scheduler.

    Time is a float in simulated seconds starting at 0.  ``run()`` executes
    events in (time, insertion-order) order until the queue drains, a time
    limit passes, or an orphan process failure surfaces.
    """

    def __init__(self):
        self._now = 0.0
        self._seq = 0
        self._heap: List = []
        self._orphan_failures: List = []

    @property
    def now(self) -> float:
        return self._now

    def call_after(self, delay: float, fn: Callable, *args) -> None:
        self.call_at(self._now + delay, fn, *args)

    def call_at(self, time: float, fn: Callable, *args) -> None:
        if time < self._now:
            raise SimError("cannot schedule in the past (%r < %r)" % (time, self._now))
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn, args))

    def spawn(self, gen: Generator, name: str = "") -> Process:
        proc = Process(self, gen, name=name)
        proc._start()
        return proc

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(delay, value)

    def _report_orphan_failure(self, proc: Process, exc: BaseException) -> None:
        self._orphan_failures.append((proc, exc))

    def run(
        self,
        until: Optional[float] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Run until the event queue drains, simulated time reaches
        ``until``, or ``stop_when()`` becomes true (checked between events).

        Returns the simulated time at which the run stopped.  An exception
        escaping a process that nobody joined is re-raised here -- silent
        failure of a server process would otherwise invalidate benchmarks.
        """
        while self._heap:
            if stop_when is not None and stop_when():
                return self._now
            time, _seq, fn, args = self._heap[0]
            if until is not None and time > until:
                self._now = until
                break
            heapq.heappop(self._heap)
            self._now = time
            fn(*args)
            if self._orphan_failures:
                _proc, exc = self._orphan_failures[0]
                raise exc
        else:
            if until is not None and until > self._now and (
                stop_when is None or not stop_when()
            ):
                self._now = until
        return self._now

    def run_process(self, gen: Generator, name: str = "", until: Optional[float] = None) -> Any:
        """Spawn ``gen`` and run just until it completes; return its value.

        The world stops at the completion of this process -- background
        activity (e.g. asynchronous propagation) scheduled after that
        moment stays queued, so tests can observe intermediate states.
        Raises if the process did not finish by ``until``.
        """
        proc = self.spawn(gen, name=name)
        self.run(until=until, stop_when=lambda: proc.done)
        if not proc.done:
            raise SimError("process %r did not finish by t=%r" % (proc.name, until))
        return proc.value
