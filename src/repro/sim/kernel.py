"""Deterministic discrete-event simulation kernel.

The kernel is the substrate on which every distributed component of the
reproduction runs: Walter servers, clients, the configuration service, the
network, and the disk model are all simulated processes scheduled here.

Processes are Python generators that ``yield`` *waitables*:

* :class:`Timeout` -- resume after a simulated delay,
* :class:`Event` -- resume when another process triggers the event,
* :class:`Process` -- resume when another process finishes (a join); the
  value of the ``yield`` expression is the joined process's return value.

The kernel is strictly deterministic: events scheduled for the same
simulated time fire in the order they were scheduled (a monotonic sequence
number breaks ties), so a run with a fixed seed is bit-for-bit repeatable.
This property is load-bearing for the test suite, which asserts exact
transaction orderings, and for the benchmark harness, whose numbers must be
stable across runs.
"""

from __future__ import annotations

import gc
import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple, Union

#: Event/process names are either plain strings or a ``(fmt, args)`` pair
#: formatted lazily on first access -- hot paths create millions of events
#: whose names are only ever read by tracing and error messages.
Name = Union[str, Tuple[str, tuple]]


class gc_paused:
    """Pause CPython's cyclic collector across a section of code.

    ``Kernel.run()`` already pauses the collector while the event loop
    executes (see :class:`Kernel`), but harnesses that interleave many
    short runs with world construction -- the chaos experiments run, spawn,
    run again, then settle -- pay for a full young-generation scan at every
    run boundary.  Wrapping the whole experiment keeps the collector off
    across those boundaries.  The prior GC state is restored on exit, and
    nesting is safe (the inner pause is a no-op).

    A plain class rather than ``@contextmanager``: the generator-based
    protocol costs a few hundred microseconds per use, which shows up
    when a harness enters it once per (short) experiment.
    """

    __slots__ = ("_was_enabled",)

    def __enter__(self) -> None:
        self._was_enabled = gc.isenabled()
        if self._was_enabled:
            gc.disable()

    def __exit__(self, *exc_info) -> None:
        if self._was_enabled:
            gc.enable()


class SimError(Exception):
    """Base class for simulation kernel errors."""


class Interrupt(SimError):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Waitable:
    """Something a process may ``yield`` on.

    Subclasses implement :meth:`_subscribe`, which registers a callback to
    be invoked (exactly once) with ``(value, exception)`` when the waitable
    completes.  If the waitable has already completed, the callback fires on
    the next kernel step at the current simulated time.
    """

    def _subscribe(self, kernel: "Kernel", callback: Callable[[Any, Optional[BaseException]], None]) -> None:
        raise NotImplementedError


class Timeout(Waitable):
    """Resume the yielding process after ``delay`` simulated seconds."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise ValueError("timeout delay must be >= 0, got %r" % (delay,))
        self.delay = delay
        self.value = value

    def _subscribe(self, kernel: "Kernel", callback) -> None:
        # call_after inlined (one fewer call per timeout); __init__
        # already rejected negative delays, so no past-scheduling check.
        delay = self.delay
        kernel._seq += 1
        if delay == 0.0:
            kernel._ready.append((kernel.now, kernel._seq, callback, (self.value, None)))
        else:
            heapq.heappush(
                kernel._heap, (kernel.now + delay, kernel._seq, callback, (self.value, None))
            )


class Event(Waitable):
    """A one-shot event that processes can wait on.

    ``trigger(value)`` wakes every waiter with ``value``; ``fail(exc)``
    raises ``exc`` inside every waiter.  Triggering twice is an error --
    distributed-protocol code that may race to complete an event should use
    :meth:`trigger_once`.
    """

    __slots__ = ("kernel", "_done", "_value", "_exc", "_callbacks", "_name")

    def __init__(self, kernel: "Kernel", name: Name = ""):
        self.kernel = kernel
        self._name = name
        self._done = False
        # _value/_exc are only assigned on completion (both trigger and
        # fail set both), and only read after it -- hot paths create
        # millions of events, so __init__ stays minimal.  _callbacks is
        # lazily allocated for the same reason: most events are triggered
        # with zero or one waiter.
        self._callbacks: Optional[List[Callable]] = None

    @property
    def name(self) -> str:
        n = self._name
        if type(n) is tuple:
            n = self._name = n[0] % n[1]
        return n

    @property
    def triggered(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimError("event %r not yet triggered" % (self.name,))
        return self._value

    def trigger(self, value: Any = None) -> None:
        if self._done:
            raise SimError("event %r triggered twice" % (self.name,))
        self._done = True
        self._value = value
        self._exc = None
        # _flush with call_soon inlined: trigger fires once per event on
        # the hot path, and each waiter wake-up is one deque append.
        callbacks = self._callbacks
        if callbacks is not None:
            self._callbacks = None
            kernel = self.kernel
            now = kernel.now
            ready = kernel._ready
            seq = kernel._seq
            for cb in callbacks:
                seq += 1
                ready.append((now, seq, cb, (value, None)))
            kernel._seq = seq

    def trigger_once(self, value: Any = None) -> bool:
        """Trigger if not already done; return True if this call won."""
        if self._done:
            return False
        self.trigger(value)
        return True

    def fail(self, exc: BaseException) -> None:
        if self._done:
            raise SimError("event %r triggered twice" % (self.name,))
        self._done = True
        self._value = None
        self._exc = exc
        self._flush()

    def _flush(self) -> None:
        callbacks = self._callbacks
        if callbacks is not None:
            self._callbacks = None
            call_soon = self.kernel.call_soon
            for cb in callbacks:
                call_soon(cb, self._value, self._exc)

    def _subscribe(self, kernel: "Kernel", callback) -> None:
        if self._done:
            # call_soon inlined: yielding an already-completed event is
            # the common case on mailbox/lock fast paths.
            kernel._seq += 1
            kernel._ready.append((kernel.now, kernel._seq, callback, (self._value, self._exc)))
        elif self._callbacks is None:
            self._callbacks = [callback]
        else:
            self._callbacks.append(callback)


class AllOf(Waitable):
    """Completes when every child waitable completes; value is the list of
    child values in order.  The first child failure fails the whole group."""

    def __init__(self, children: Iterable[Waitable]):
        self.children = list(children)

    def _subscribe(self, kernel: "Kernel", callback) -> None:
        children = self.children
        if not children:
            kernel.call_soon(callback, [], None)
            return
        results: List[Any] = [None] * len(children)
        # state = [pending, failed]; a list cell is cheaper than a dict.
        state = [len(children), False]

        def make_child_cb(index: int):
            def child_cb(value, exc):
                if state[1]:
                    return
                if exc is not None:
                    state[1] = True
                    callback(None, exc)
                    return
                results[index] = value
                state[0] -= 1
                if state[0] == 0:
                    callback(results, None)

            return child_cb

        for i, child in enumerate(children):
            child._subscribe(kernel, make_child_cb(i))


class AnyOf(Waitable):
    """Completes when the first child completes; value is ``(index, value)``."""

    def __init__(self, children: Iterable[Waitable]):
        self.children = list(children)
        if not self.children:
            raise ValueError("AnyOf requires at least one child")

    def _subscribe(self, kernel: "Kernel", callback) -> None:
        state = [False]

        def make_child_cb(index: int):
            def child_cb(value, exc):
                if state[0]:
                    return
                state[0] = True
                if exc is not None:
                    callback(None, exc)
                else:
                    callback((index, value), None)

            return child_cb

        for i, child in enumerate(self.children):
            child._subscribe(kernel, make_child_cb(i))


class Process(Waitable):
    """A running simulated process wrapping a generator.

    Yield a Process to join it.  ``interrupt()`` throws :class:`Interrupt`
    into the generator at the current simulated time.
    """

    __slots__ = (
        "kernel",
        "_name",
        "_gen",
        "_send",
        "_throw",
        "_step_cb",
        "_done",
        "_value",
        "_exc",
        "_joiners",
        "_interrupted",
        "_absorb_interrupt",
    )

    def __init__(
        self,
        kernel: "Kernel",
        gen: Generator,
        name: Name = "",
        absorb_interrupt: bool = False,
    ):
        self.kernel = kernel
        self._name = name or getattr(gen, "__name__", "process")
        self._gen = gen
        # Bound-method caches: _step runs once per resume on every process
        # in the system, so the attribute lookups are paid millions of
        # times per benchmark run.  gen.throw is NOT cached -- exceptions
        # are rare, and binding it here would cost every spawn.
        self._send = gen.send
        self._step_cb = self._step
        self._done = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._joiners: Optional[List[Callable]] = None
        self._interrupted = False
        # An interrupted process normally finishes with the Interrupt as
        # its exception; with absorb_interrupt it finishes cleanly with
        # value None instead (the behaviour a ``try/except Interrupt``
        # wrapper generator would give, without the extra frame on every
        # resume).
        self._absorb_interrupt = absorb_interrupt

    @property
    def name(self) -> str:
        n = self._name
        if type(n) is tuple:
            n = self._name = n[0] % n[1]
        return n

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise SimError("process %r still running" % (self.name,))
        if self._exc is not None:
            raise self._exc
        return self._value

    def interrupt(self, cause: Any = None) -> None:
        """Throw Interrupt into the process on the next kernel step."""
        if self._done:
            return
        self._interrupted = True
        self.kernel.call_soon(self._step_cb, None, Interrupt(cause))

    def _start(self) -> None:
        # call_soon inlined: one spawn per RPC served.
        kernel = self.kernel
        kernel._seq += 1
        kernel._ready.append((kernel.now, kernel._seq, self._step_cb, (None, None)))

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._done:
            return
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._send(value)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except BaseException as err:  # noqa: BLE001 - propagated to joiners
            if self._absorb_interrupt and isinstance(err, Interrupt):
                self._finish(None, None)
            else:
                self._finish(None, err)
            return
        # EAFP dispatch: anything with a _subscribe hook is treated as a
        # Waitable (exceptions are zero-cost until raised on 3.11+, and
        # this path runs once per process resume).
        try:
            subscribe = target._subscribe
        except AttributeError:
            self._finish(
                None,
                SimError(
                    "process %r yielded %r, which is not a Waitable"
                    % (self.name, target)
                ),
            )
            return
        subscribe(self.kernel, self._step_cb)

    def _finish(self, value: Any, exc: Optional[BaseException]) -> None:
        self._done = True
        self._value = value
        self._exc = exc
        joiners = self._joiners
        self._joiners = None
        if not joiners:
            if exc is not None:
                self.kernel._report_orphan_failure(self, exc)
            return
        kernel = self.kernel
        now = kernel.now
        ready = kernel._ready
        seq = kernel._seq
        for cb in joiners:
            seq += 1
            ready.append((now, seq, cb, (value, exc)))
        kernel._seq = seq

    def _subscribe(self, kernel: "Kernel", callback) -> None:
        if self._done:
            kernel._seq += 1
            kernel._ready.append((kernel.now, kernel._seq, callback, (self._value, self._exc)))
        elif self._joiners is None:
            self._joiners = [callback]
        else:
            self._joiners.append(callback)

    def __repr__(self) -> str:
        state = "done" if self._done else "running"
        return "<Process %s (%s)>" % (self.name, state)


class Kernel:
    """The discrete-event scheduler.

    Time is a float in simulated seconds starting at 0.  ``run()`` executes
    events in (time, insertion-order) order until the queue drains, a time
    limit passes, or an orphan process failure surfaces.
    """

    def __init__(self, pause_gc: bool = True):
        #: Current simulated time.  A plain attribute, not a property:
        #: every component reads ``kernel.now`` on its hot path, and the
        #: descriptor call was measurable at millions of reads per run.
        #: Only ``run()`` and the schedulers write it.
        self.now = 0.0
        self._seq = 0
        #: Pause CPython's cyclic collector while ``run()`` executes.  The
        #: simulation produces no reference cycles (measured: every gen0/1/2
        #: collection across the benchmark scenarios collects zero objects),
        #: so all cleanup happens by refcounting and the collector's heap
        #: scans are pure overhead -- over 40%% of wall time on the larger
        #: scenarios.  GC state is saved and restored around ``run()``, so
        #: callers that rely on the collector between runs are unaffected.
        self.pause_gc = pause_gc
        self._heap: List = []
        # Fast lane for zero-delay callbacks.  Entries share the heap's
        # (time, seq, fn, args) shape; because they are appended at the
        # current (non-decreasing) time with a monotonic seq, the deque
        # is always sorted by (time, seq), and run() merges the two
        # queues by comparing heads -- firing order is bit-for-bit the
        # order a heap-only scheduler would produce.
        self._ready: deque = deque()
        self._orphan_failures: List = []
        #: Total events executed by ``run()`` -- the denominator of the
        #: wall-clock benchmarks' events/sec figure.
        self.events_executed = 0

    def call_soon(self, fn: Callable, *args) -> None:
        """Schedule ``fn`` at the current simulated time (zero delay)."""
        self._seq += 1
        self._ready.append((self.now, self._seq, fn, args))

    def call_after(self, delay: float, fn: Callable, *args) -> None:
        if delay == 0.0:
            self._seq += 1
            self._ready.append((self.now, self._seq, fn, args))
            return
        time = self.now + delay
        if time < self.now:
            raise SimError(
                "cannot schedule in the past (%r < %r)" % (time, self.now)
            )
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn, args))

    def call_at(self, time: float, fn: Callable, *args) -> None:
        if time < self.now:
            raise SimError("cannot schedule in the past (%r < %r)" % (time, self.now))
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn, args))

    def spawn(
        self, gen: Generator, name: Name = "", absorb_interrupt: bool = False
    ) -> Process:
        proc = Process(self, gen, name=name, absorb_interrupt=absorb_interrupt)
        proc._start()
        return proc

    def event(self, name: Name = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(delay, value)

    def _report_orphan_failure(self, proc: Process, exc: BaseException) -> None:
        self._orphan_failures.append((proc, exc))

    def run(
        self,
        until: Optional[float] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Run until the event queue drains, simulated time reaches
        ``until``, or ``stop_when()`` becomes true (checked between events).

        Returns the simulated time at which the run stopped.  An exception
        escaping a process that nobody joined is re-raised here -- silent
        failure of a server process would otherwise invalidate benchmarks.
        """
        heap = self._heap
        ready = self._ready
        heappop = heapq.heappop
        orphans = self._orphan_failures
        executed = 0
        reenable_gc = self.pause_gc and gc.isenabled()
        if reenable_gc:
            gc.disable()
        try:
            while ready or heap:
                if stop_when is not None and stop_when():
                    return self.now
                # Merge the two queues: seqs are unique, so tuple
                # comparison never reaches the (uncomparable) fn field.
                if not ready or (heap and heap[0] < ready[0]):
                    entry = heap[0]
                    if until is not None and entry[0] > until:
                        self.now = until
                        break
                    heappop(heap)
                else:
                    entry = ready[0]
                    if until is not None and entry[0] > until:
                        self.now = until
                        break
                    ready.popleft()
                self.now = entry[0]
                executed += 1
                entry[2](*entry[3])
                if orphans:
                    _proc, exc = orphans[0]
                    raise exc
            else:
                if until is not None and until > self.now and (
                    stop_when is None or not stop_when()
                ):
                    self.now = until
        finally:
            self.events_executed += executed
            if reenable_gc:
                gc.enable()
        return self.now

    def run_process(self, gen: Generator, name: str = "", until: Optional[float] = None) -> Any:
        """Spawn ``gen`` and run just until it completes; return its value.

        The world stops at the completion of this process -- background
        activity (e.g. asynchronous propagation) scheduled after that
        moment stays queued, so tests can observe intermediate states.
        Raises if the process did not finish by ``until``.
        """
        proc = self.spawn(gen, name=name)
        self.run(until=until, stop_when=lambda: proc.done)
        if not proc.done:
            raise SimError("process %r did not finish by t=%r" % (proc.name, until))
        return proc.value
